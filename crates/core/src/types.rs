//! Common types and abstraction interfaces: application messages, the
//! eventual-consensus (EC), eventual-total-order-broadcast (ETOB) and
//! eventual-irrevocable-consensus (EIC) interfaces.

use std::fmt;
use std::sync::Arc;

use ec_sim::{Algorithm, ProcessId};

use crate::version::VersionVector;

/// Globally unique identifier of an application message: the broadcaster and
/// a per-broadcaster sequence number.
///
/// # Example
///
/// ```
/// use ec_core::types::MsgId;
/// use ec_sim::ProcessId;
/// let id = MsgId::new(ProcessId::new(2), 7);
/// assert_eq!(format!("{id}"), "p2#7");
/// ```
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MsgId {
    /// The broadcasting process.
    pub origin: ProcessId,
    /// Sequence number local to the broadcaster.
    pub seq: u64,
}

impl MsgId {
    /// Creates a message identifier.
    pub fn new(origin: ProcessId, seq: u64) -> Self {
        MsgId { origin, seq }
    }
}

impl fmt::Debug for MsgId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.origin, self.seq)
    }
}

impl fmt::Display for MsgId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.origin, self.seq)
    }
}

/// The reference-counted payload of an [`AppMessage`].
///
/// Payload bytes are shared, not owned: cloning a message — which the wire
/// layer does once per recipient on every broadcast fan-out, and the thread
/// runtime once per channel send — bumps a reference count instead of deep-
/// copying the byte buffer. The one copy happens at creation, when the
/// client's `Vec<u8>` is moved behind the `Arc`.
pub type Payload = Arc<[u8]>;

/// The causal dependency list `C(m)` of a message. Session-chained
/// commands declare exactly one dependency, so the list lives inline
/// ([`crate::inline::InlineVec`]) and cloning an [`AppMessage`] on the
/// broadcast fan-out or delivery path allocates nothing; a rare longer
/// list spills to the heap transparently.
pub type DepList = crate::inline::InlineVec<MsgId, 2>;

/// An application message broadcast through (E)TOB: an identifier, an opaque
/// payload, and the identifiers of the messages it causally depends on (the
/// paper's `C(m)` passed to `broadcastETOB(m, C(m))`).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct AppMessage {
    /// Unique identifier.
    pub id: MsgId,
    /// Opaque application payload (shared zero-copy across fan-outs).
    pub payload: Payload,
    /// Identifiers of causal predecessors declared at broadcast time
    /// (inline up to two entries, so clones stay allocation-free).
    pub deps: DepList,
}

impl AppMessage {
    /// Creates a message with no declared causal dependencies.
    pub fn new(id: MsgId, payload: impl Into<Payload>) -> Self {
        AppMessage {
            id,
            payload: payload.into(),
            deps: DepList::new(),
        }
    }

    /// Creates a message with declared causal dependencies `C(m)`.
    pub fn with_deps(
        id: MsgId,
        payload: impl Into<Payload>,
        deps: impl IntoIterator<Item = MsgId>,
    ) -> Self {
        AppMessage {
            id,
            payload: payload.into(),
            deps: deps.into_iter().collect(),
        }
    }

    /// The modeled wire size of the message in bytes: the identifier, a
    /// length-prefixed payload, and the length-prefixed dependency list.
    /// The sim and thread engines pass messages in memory and use this
    /// accounting model for the byte metrics and experiment E12; the
    /// socket engine serializes for real (`ec_replication::net::codec`)
    /// and measures bytes from the actual frames instead.
    pub fn wire_bytes(&self) -> u64 {
        16 + 8 + self.payload.len() as u64 + 8 + 16 * self.deps.len() as u64
    }
}

impl fmt::Debug for AppMessage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "AppMessage({}, {} bytes, deps: {:?})",
            self.id,
            self.payload.len(),
            self.deps
        )
    }
}

/// The input accepted by every (E)TOB implementation: `broadcastETOB(m, C(m))`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EtobBroadcast {
    /// The message to broadcast. Its identifier must be unique in the run
    /// (the workload generators in [`crate::workload`] take care of this).
    pub message: AppMessage,
}

impl EtobBroadcast {
    /// Broadcast of a fresh message with no causal dependencies.
    pub fn new(origin: ProcessId, seq: u64, payload: impl Into<Payload>) -> Self {
        EtobBroadcast {
            message: AppMessage::new(MsgId::new(origin, seq), payload),
        }
    }

    /// Broadcast of a fresh message with declared causal dependencies.
    pub fn with_deps(
        origin: ProcessId,
        seq: u64,
        payload: impl Into<Payload>,
        deps: impl IntoIterator<Item = MsgId>,
    ) -> Self {
        EtobBroadcast {
            message: AppMessage::with_deps(MsgId::new(origin, seq), payload, deps),
        }
    }
}

/// The output produced by every (E)TOB implementation: the full current
/// delivered sequence `d_i`, emitted every time it changes. Keeping the whole
/// sequence in each output makes the paper's `d_i(t)` directly available to
/// the specification checkers.
pub type DeliveredSequence = Vec<AppMessage>;

/// The interface of an eventual-total-order-broadcast implementation: an
/// [`Algorithm`] whose input is [`EtobBroadcast`] and whose output is the
/// current [`DeliveredSequence`]. Implementations include the direct Ω-based
/// Algorithm 5 ([`crate::etob_omega::EtobOmega`]), the transformation from
/// eventual consensus ([`crate::transforms::EcToEtob`], Algorithm 1), and the
/// strongly consistent baseline ([`crate::tob_consensus::ConsensusTob`]).
pub trait EventualTotalOrderBroadcast:
    Algorithm<Input = EtobBroadcast, Output = DeliveredSequence>
{
}

impl<T> EventualTotalOrderBroadcast for T where
    T: Algorithm<Input = EtobBroadcast, Output = DeliveredSequence>
{
}

/// Rolling-hash seed shared by every stable-prefix implementation: the
/// FNV-1a offset basis, i.e. the hash of the empty sequence. The durable
/// layer persists prefix hashes seeded here, so the constant is part of the
/// on-disk format and must never change.
pub const SEQ_HASH_SEED: u64 = 0xcbf2_9ce4_8422_2325;

/// Extends a rolling FNV-1a prefix hash with one message identifier (origin
/// index then sequence number, both little-endian). This is the single hash
/// function behind [`Compactable::stable_hash`] and the durable layer's
/// snapshot/log linkage checks, so — like [`SEQ_HASH_SEED`] — it is part of
/// the on-disk format.
pub fn seq_hash_step(mut h: u64, id: MsgId) -> u64 {
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let bytes = (id.origin.index() as u64)
        .to_le_bytes()
        .into_iter()
        .chain(id.seq.to_le_bytes());
    for b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Stable-prefix compaction and durable recovery, as implemented by
/// [`crate::etob_omega::EtobOmega`] (see `EtobConfig::compact_after`).
///
/// A broadcast automaton with a *stable prefix* has folded the first
/// [`Compactable::stable_base`] entries of its delivered sequence out of
/// resident state; the fold is summarized by a rolling identifier hash
/// ([`Compactable::stable_hash`]) and an exact identifier digest
/// ([`Compactable::stable_frontier`]). The durable facade in
/// `ec-replication` checkpoints exactly this triple plus the resident tail,
/// and [`Compactable::prime_recovery`] reloads it into a freshly constructed
/// automaton before the node rejoins, so anti-entropy only has to fetch the
/// suffix the node missed while down.
///
/// Every method has a no-compaction default, so implementations that never
/// fold anything (e.g. the strong baseline `ConsensusTob`) implement the
/// trait as an empty `impl` block and remain fully functional — recovery
/// then degrades to replaying the whole logged tail.
pub trait Compactable {
    /// Absolute number of delivered entries folded into the stable prefix.
    fn stable_base(&self) -> u64 {
        0
    }

    /// Rolling FNV-1a hash of the folded prefix's identifiers
    /// ([`SEQ_HASH_SEED`] while nothing is folded).
    fn stable_hash(&self) -> u64 {
        SEQ_HASH_SEED
    }

    /// Exact digest of the folded identifiers (empty while nothing is
    /// folded).
    fn stable_frontier(&self) -> VersionVector {
        VersionVector::new()
    }

    /// Primes a *freshly constructed* automaton with recovered durable
    /// state: `base`/`hash`/`frontier` describe the folded prefix of the
    /// last checkpoint and `tail` is the delivered suffix beyond it
    /// (reassembled from the checkpoint and the record log). Returns `true`
    /// if the state was adopted; `false` if recovery is unsupported or the
    /// automaton is no longer pristine (the caller then starts blank and
    /// relies on anti-entropy alone).
    fn prime_recovery(
        &mut self,
        base: u64,
        hash: u64,
        frontier: VersionVector,
        tail: Vec<AppMessage>,
    ) -> bool {
        let _ = (base, hash, frontier, tail);
        false
    }
}

/// Optional telemetry attachment for broadcast automata.
///
/// Engines attach a per-replica [`ec_telemetry::Recorder`] after
/// construction; an instrumented automaton then timestamps its lifecycle
/// events (submit/admit/promote/deliver/fold/sync-pull) into it and the
/// facade harvests the recorder's histograms and flight ring at report
/// time. Every method has a no-op default, so an automaton that records
/// nothing (or a test double) implements the trait as an empty `impl`
/// block and behaves exactly as before — recording is strictly additive
/// and never observed by the protocol itself.
pub trait Instrumented {
    /// Attaches a recorder. The default discards it (nothing is recorded).
    fn attach_recorder(&mut self, recorder: ec_telemetry::Recorder) {
        let _ = recorder;
    }

    /// The attached recorder, if any.
    fn recorder(&self) -> Option<&ec_telemetry::Recorder> {
        None
    }

    /// Mutable access to the attached recorder, if any (used by wrappers —
    /// e.g. the replication facade's `Replica` — to record their own
    /// lifecycle events, such as `Applied`, into the same ring).
    fn recorder_mut(&mut self) -> Option<&mut ec_telemetry::Recorder> {
        None
    }
}

/// Invocation `proposeEC_ℓ(v)` of eventual consensus instance `ℓ`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EcInput<V> {
    /// Instance index `ℓ ≥ 1`.
    pub instance: u64,
    /// Proposed value.
    pub value: V,
}

/// Response `DecideEC(ℓ, v)` of eventual consensus instance `ℓ`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EcOutput<V> {
    /// Instance index `ℓ ≥ 1`.
    pub instance: u64,
    /// Decided value.
    pub value: V,
}

/// The interface of an eventual-consensus implementation: an [`Algorithm`]
/// accepting [`EcInput`] invocations and producing [`EcOutput`] decisions.
/// Per the paper's definition, callers must invoke `proposeEC_{ℓ+1}` only
/// after `proposeEC_ℓ` has returned; the
/// [`crate::harness::MultiInstanceProposer`] drives that discipline.
pub trait EventualConsensus:
    Algorithm<
    Input = EcInput<<Self as EventualConsensus>::Value>,
    Output = EcOutput<<Self as EventualConsensus>::Value>,
>
{
    /// The value type proposed and decided (the multivalued extension of the
    /// paper's binary definition).
    type Value: Clone + fmt::Debug + PartialEq;
}

/// Invocation `proposeEIC_ℓ(v)` of eventual irrevocable consensus (Appendix A).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EicInput<V> {
    /// Instance index `ℓ ≥ 1`.
    pub instance: u64,
    /// Proposed value.
    pub value: V,
}

/// A (possibly revocable) response of eventual irrevocable consensus
/// instance `ℓ`: later responses for the same instance revoke earlier ones.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EicOutput<V> {
    /// Instance index `ℓ ≥ 1`.
    pub instance: u64,
    /// (Current) decided value.
    pub value: V,
}

/// The interface of an eventual-irrevocable-consensus implementation
/// (Appendix A of the paper).
pub trait EventualIrrevocableConsensus:
    Algorithm<
    Input = EicInput<<Self as EventualIrrevocableConsensus>::Value>,
    Output = EicOutput<<Self as EventualIrrevocableConsensus>::Value>,
>
{
    /// The value type proposed and decided.
    type Value: Clone + fmt::Debug + PartialEq;
}

/// Either of two message types — used by wrapper algorithms (the black-box
/// transformations) to multiplex their own messages with those of the wrapped
/// algorithm.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Either<L, R> {
    /// A message of the wrapper itself.
    Left(L),
    /// A message of the wrapped (inner) algorithm.
    Right(R),
}

/// Why an incoming wire message was rejected before touching protocol state.
///
/// Handlers that consume peer input validate it first and, on failure, drop
/// the message and bump the automaton's `malformed` counter — a hostile or
/// corrupted peer must never be able to panic a replica.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// A promotion/delivery sequence carried the same identifier twice.
    DuplicateId(MsgId),
    /// A message declared itself as its own causal dependency, which would
    /// wedge the promotion scan forever.
    SelfDependency(MsgId),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::DuplicateId(id) => write!(f, "duplicate identifier {id:?} in sequence"),
            DecodeError::SelfDependency(id) => {
                write!(f, "message {id:?} lists itself as a causal dependency")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Validates a promotion/delivery sequence received from a peer: every
/// identifier must be unique.
pub fn decode_sequence(sequence: &[AppMessage]) -> Result<(), DecodeError> {
    let mut seen = std::collections::BTreeSet::new();
    for m in sequence {
        if !seen.insert(m.id) {
            return Err(DecodeError::DuplicateId(m.id));
        }
    }
    Ok(())
}

/// Validates a single causality-graph node received from a peer.
pub fn decode_node(message: &AppMessage) -> Result<(), DecodeError> {
    if message.deps.contains(&message.id) {
        return Err(DecodeError::SelfDependency(message.id));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn msg_id_ordering_is_by_origin_then_seq() {
        let a = MsgId::new(ProcessId::new(0), 5);
        let b = MsgId::new(ProcessId::new(1), 1);
        let c = MsgId::new(ProcessId::new(1), 2);
        assert!(a < b && b < c);
        assert_eq!(format!("{a:?}"), "p0#5");
    }

    #[test]
    fn app_message_constructors() {
        let id = MsgId::new(ProcessId::new(1), 1);
        let m = AppMessage::new(id, vec![1, 2, 3]);
        assert!(m.deps.is_empty());
        let dep = MsgId::new(ProcessId::new(0), 1);
        let m2 = AppMessage::with_deps(MsgId::new(ProcessId::new(1), 2), vec![], vec![dep]);
        assert_eq!(m2.deps, vec![dep]);
        assert!(format!("{m2:?}").contains("deps"));
    }

    #[test]
    fn etob_broadcast_constructors_assign_ids() {
        let b = EtobBroadcast::new(ProcessId::new(2), 9, b"x".to_vec());
        assert_eq!(b.message.id, MsgId::new(ProcessId::new(2), 9));
        let dep = MsgId::new(ProcessId::new(2), 8);
        let c = EtobBroadcast::with_deps(ProcessId::new(2), 10, b"y".to_vec(), vec![dep]);
        assert_eq!(c.message.deps, vec![dep]);
    }

    #[test]
    fn decode_rejects_malformed_peer_input() {
        let id = MsgId::new(ProcessId::new(0), 1);
        let ok = vec![
            AppMessage::new(id, vec![]),
            AppMessage::new(MsgId::new(ProcessId::new(0), 2), vec![]),
        ];
        assert!(decode_sequence(&ok).is_ok());
        let dup = vec![AppMessage::new(id, vec![]), AppMessage::new(id, vec![])];
        assert_eq!(decode_sequence(&dup), Err(DecodeError::DuplicateId(id)));
        let selfdep = AppMessage::with_deps(id, vec![], vec![id]);
        assert_eq!(decode_node(&selfdep), Err(DecodeError::SelfDependency(id)));
        assert!(format!("{}", DecodeError::DuplicateId(id)).contains("duplicate"));
        assert!(format!("{}", DecodeError::SelfDependency(id)).contains("dependency"));
    }

    #[test]
    fn either_is_usable_as_a_message_type() {
        let l: Either<u8, &str> = Either::Left(1);
        let r: Either<u8, &str> = Either::Right("m");
        assert_ne!(format!("{l:?}"), format!("{r:?}"));
    }
}

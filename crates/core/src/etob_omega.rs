//! **Algorithm 5** of the paper: eventual total order broadcast (ETOB)
//! directly from Ω.
//!
//! Every process that broadcasts a message sends its causality graph to
//! everyone. Every process maintains (1) a causality graph `CG_i` of all
//! messages it knows about and (2) a *promotion sequence* `promote_i`, a
//! linearization of `CG_i` that respects causal order and only ever grows by
//! appending. As long as a process considers itself the leader (its Ω module
//! outputs itself), it periodically sends its promotion sequence to everyone.
//! A process adopts a received promotion sequence as its delivered sequence
//! `d_i` only if the sender is the process its own Ω module currently trusts.
//!
//! The three headline properties of the paper:
//!
//! * **P1 — two communication steps.** A broadcast reaches the leader in one
//!   message hop (`update`) and the resulting promotion sequence reaches all
//!   processes in one more hop (`promote`). With
//!   [`EtobConfig::eager_promote`] the leader promotes immediately upon
//!   learning a new message, making the two-hop latency visible end to end;
//!   otherwise a fraction of the promotion period is added.
//! * **P2 — strong consistency under a stable leader.** If Ω outputs the same
//!   leader at every process from the very beginning, delivered sequences are
//!   prefix-ordered from time 0: the algorithm implements full TOB.
//! * **P3 — causal order always.** Promotion sequences linearize the causal
//!   graph, so causal order holds even while processes trust different
//!   leaders.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use ec_sim::{Algorithm, Context, ProcessId};

use crate::types::{AppMessage, DeliveredSequence, EtobBroadcast, MsgId};

/// The causality graph `CG_i`: all messages known to a process together with
/// the causal edges `(m′, m)` for every declared dependency `m′ ∈ C(m)`.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct CausalGraph {
    nodes: BTreeMap<MsgId, AppMessage>,
    /// Edges `(before, after)`.
    edges: BTreeSet<(MsgId, MsgId)>,
}

impl CausalGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// `UpdateCG(m, C(m))`: adds the node `m` and the edges
    /// `{(m′, m) | m′ ∈ C(m)}`.
    pub fn update(&mut self, message: AppMessage) {
        for dep in &message.deps {
            self.edges.insert((*dep, message.id));
        }
        self.nodes.insert(message.id, message);
    }

    /// `UnionCG(CG_j)`: merges another causality graph into this one.
    pub fn union(&mut self, other: &CausalGraph) {
        for (id, msg) in &other.nodes {
            self.nodes.entry(*id).or_insert_with(|| msg.clone());
        }
        self.edges.extend(other.edges.iter().copied());
    }

    /// Number of known messages.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if no message is known.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Returns `true` if the graph contains the message.
    pub fn contains(&self, id: MsgId) -> bool {
        self.nodes.contains_key(&id)
    }

    /// The causal predecessors of `id` recorded in the graph.
    pub fn predecessors(&self, id: MsgId) -> impl Iterator<Item = MsgId> + '_ {
        self.edges
            .iter()
            .filter(move |(_, after)| *after == id)
            .map(|(before, _)| *before)
    }

    /// The messages of the graph, keyed by identifier.
    pub fn messages(&self) -> impl Iterator<Item = &AppMessage> + '_ {
        self.nodes.values()
    }

    /// The causal edges of the graph.
    pub fn edges(&self) -> impl Iterator<Item = (MsgId, MsgId)> + '_ {
        self.edges.iter().copied()
    }
}

/// Messages of [`EtobOmega`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EtobMsg {
    /// `update(CG_i)`: the sender's causality graph.
    Update(CausalGraph),
    /// `promote(promote_i)`: the sender's promotion sequence.
    Promote(Vec<AppMessage>),
}

/// Configuration of [`EtobOmega`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EtobConfig {
    /// Ticks between the leader's periodic `promote` broadcasts.
    pub promote_period: u64,
    /// If `true`, a process that currently considers itself the leader sends
    /// a `promote` immediately whenever its promotion sequence grows, instead
    /// of waiting for the next period. This realizes the paper's optimal
    /// two-communication-step delivery; ablation A2 quantifies the trade-off.
    pub eager_promote: bool,
    /// Message batching: the maximum number of ticks an application message
    /// may wait before the `update` carrying it is broadcast.
    ///
    /// With `batch == 0` (the default) every `broadcastETOB(m, C(m))`
    /// invocation broadcasts `update(CG_i)` immediately — one broadcast per
    /// operation, the literal Algorithm 5. With `batch > 0` the process
    /// instead coalesces all operations submitted within a `batch`-tick
    /// window into a *single* `update(CG_i)` broadcast, so the hot path
    /// scales with operations per flush rather than per message. This is
    /// correct as-is because `update` messages carry the whole causality
    /// graph: the flushed broadcast covers every pending message at once.
    /// Experiment E11 quantifies the broadcasts-per-op reduction; the
    /// trade-off is up to `batch` extra ticks of delivery latency.
    pub batch: u64,
    /// Anti-entropy retransmission: every `resend_period` ticks, a process
    /// whose causality graph contains messages missing from its delivered
    /// sequence re-broadcasts `update(CG_i)`. `0` (the default) disables it.
    ///
    /// The paper assumes reliable links, under which a single `update`
    /// broadcast suffices. Over the chaos subsystem's *lossy* links the
    /// algorithm instead relies on the fairness assumption (each transmission
    /// attempt succeeds with probability `1 - drop_prob > 0`, see
    /// `ec_sim::LinkFaults`): enabling retransmission turns that
    /// infinitely-often delivery guarantee into eventual delivery of every
    /// payload, restoring convergence. Retransmission stops by itself once
    /// the local delivered sequence covers the local graph.
    pub resend_period: u64,
}

impl Default for EtobConfig {
    fn default() -> Self {
        EtobConfig {
            promote_period: 5,
            eager_promote: false,
            batch: 0,
            resend_period: 0,
        }
    }
}

impl EtobConfig {
    /// Configuration with eager promotion enabled (used by the latency
    /// experiment E1).
    pub fn eager() -> Self {
        EtobConfig {
            eager_promote: true,
            ..Default::default()
        }
    }

    /// Configuration that coalesces operations submitted within a
    /// `flush_interval`-tick window into one `update` broadcast (used by the
    /// sharded service and by experiment E11).
    pub fn batched(flush_interval: u64) -> Self {
        EtobConfig {
            batch: flush_interval,
            ..Default::default()
        }
    }

    /// Returns `true` if message batching is enabled.
    pub fn batching_enabled(&self) -> bool {
        self.batch > 0
    }

    /// Builder-style helper enabling anti-entropy retransmission every
    /// `period` ticks (used by fault-injecting runs; see
    /// [`EtobConfig::resend_period`]).
    pub fn with_resend(mut self, period: u64) -> Self {
        self.resend_period = period;
        self
    }
}

/// Algorithm 5: ETOB from Ω.
pub struct EtobOmega {
    me: ProcessId,
    config: EtobConfig,
    /// `d_i`: the delivered sequence output by this process.
    delivered: Vec<AppMessage>,
    /// `promote_i`: the sequence this process promotes while it trusts itself.
    promote: Vec<AppMessage>,
    /// identifiers already in `promote`, for O(log n) membership checks.
    promoted_ids: BTreeSet<MsgId>,
    /// `CG_i`: the causality graph.
    graph: CausalGraph,
    /// Batching state: absolute deadline of the pending flush, if any.
    next_flush: Option<u64>,
    /// Batching state: absolute deadline of the next periodic promote.
    next_promote: u64,
    /// Anti-entropy state: absolute deadline of the next resend check.
    next_resend: u64,
    /// Number of `update` broadcasts sent (one per flush in batch mode, one
    /// per operation otherwise) — reported by the batching experiment E11.
    updates_sent: u64,
}

impl EtobOmega {
    /// Creates the automaton for process `me`.
    ///
    /// # Example
    ///
    /// Run Algorithm 5 over the simulator with a stable leader and check that
    /// a broadcast is delivered everywhere:
    ///
    /// ```
    /// use ec_core::etob_omega::{EtobConfig, EtobOmega};
    /// use ec_core::workload::BroadcastWorkload;
    /// use ec_detectors::omega::OmegaOracle;
    /// use ec_sim::{FailurePattern, NetworkModel, ProcessId, WorldBuilder};
    ///
    /// let n = 3;
    /// let failures = FailurePattern::no_failures(n);
    /// let omega = OmegaOracle::stable_from_start(failures.clone());
    /// let mut world = WorldBuilder::new(n)
    ///     .network(NetworkModel::fixed_delay(2))
    ///     .failures(failures)
    ///     .build_with(|p| EtobOmega::new(p, EtobConfig::default()), omega);
    /// let workload = BroadcastWorkload::uniform(n, 4, 10, 10);
    /// workload.submit_to(&mut world);
    /// world.run_until(1_000);
    /// for p in world.process_ids() {
    ///     assert_eq!(world.algorithm(p).delivered().len(), 4);
    /// }
    /// ```
    pub fn new(me: ProcessId, config: EtobConfig) -> Self {
        EtobOmega {
            me,
            config,
            delivered: Vec::new(),
            promote: Vec::new(),
            promoted_ids: BTreeSet::new(),
            graph: CausalGraph::new(),
            next_flush: None,
            next_promote: 0,
            next_resend: 0,
            updates_sent: 0,
        }
    }

    /// Number of `update` broadcasts this process has performed. In batch
    /// mode several operations share one broadcast, so this is the quantity
    /// the batching experiment (E11) compares against delivered operations.
    pub fn updates_sent(&self) -> u64 {
        self.updates_sent
    }

    /// The current delivered sequence `d_i`.
    pub fn delivered(&self) -> &[AppMessage] {
        &self.delivered
    }

    /// The current promotion sequence `promote_i`.
    pub fn promotion_sequence(&self) -> &[AppMessage] {
        &self.promote
    }

    /// The causality graph `CG_i`.
    pub fn causal_graph(&self) -> &CausalGraph {
        &self.graph
    }

    /// `UpdatePromote()`: extends the promotion sequence with every message of
    /// the causality graph not yet present, in an order that respects the
    /// causal edges (and keeps the existing sequence as a prefix). Messages
    /// whose causal predecessors are not yet known are held back until the
    /// predecessors arrive. Returns `true` if the sequence grew.
    fn update_promote(&mut self) -> bool {
        let before = self.promote.len();
        loop {
            let mut appended = false;
            // Deterministic scan order: by message identifier.
            let candidates: Vec<MsgId> = self
                .graph
                .nodes
                .keys()
                .filter(|id| !self.promoted_ids.contains(id))
                .copied()
                .collect();
            for id in candidates {
                let deps_satisfied = self
                    .graph
                    .predecessors(id)
                    .all(|dep| self.promoted_ids.contains(&dep));
                if deps_satisfied {
                    let msg = self.graph.nodes[&id].clone();
                    self.promote.push(msg);
                    self.promoted_ids.insert(id);
                    appended = true;
                }
            }
            if !appended {
                break;
            }
        }
        self.promote.len() > before
    }

    /// Anti-entropy step: when enabled and due, re-broadcasts `update(CG_i)`
    /// if the causality graph holds any message the delivered sequence does
    /// not — the retransmission that makes infinitely-often delivery (lossy
    /// links with `drop_prob < 1`) sufficient for eventual delivery.
    fn maybe_resend(&mut self, ctx: &mut Context<'_, Self>) {
        if self.config.resend_period == 0 {
            return;
        }
        let now = ctx.now().as_u64();
        if now < self.next_resend {
            return;
        }
        self.next_resend = now + self.config.resend_period;
        ctx.set_timer(self.config.resend_period);
        let delivered: BTreeSet<MsgId> = self.delivered.iter().map(|m| m.id).collect();
        if self.graph.nodes.keys().any(|id| !delivered.contains(id)) {
            self.updates_sent += 1;
            ctx.broadcast(EtobMsg::Update(self.graph.clone()));
        }
    }
}

impl fmt::Debug for EtobOmega {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EtobOmega")
            .field("me", &self.me)
            .field("delivered", &self.delivered.len())
            .field("promote", &self.promote.len())
            .field("known", &self.graph.len())
            .finish()
    }
}

impl Algorithm for EtobOmega {
    type Msg = EtobMsg;
    type Input = EtobBroadcast;
    type Output = DeliveredSequence;
    type Fd = ProcessId;

    fn on_start(&mut self, ctx: &mut Context<'_, Self>) {
        let now = ctx.now().as_u64();
        self.next_promote = now + self.config.promote_period;
        ctx.set_timer(self.config.promote_period);
        if self.config.resend_period > 0 {
            self.next_resend = now + self.config.resend_period;
            ctx.set_timer(self.config.resend_period);
        }
    }

    fn on_input(&mut self, input: EtobBroadcast, ctx: &mut Context<'_, Self>) {
        // On broadcastETOB(m, C(m)): UpdateCG(m, C(m)); send update(CG_i) to all.
        self.graph.update(input.message);
        if self.config.batching_enabled() {
            // Coalesce: the update goes out at the next flush deadline and
            // covers every message recorded in the graph by then.
            if self.next_flush.is_none() {
                self.next_flush = Some(ctx.now().as_u64() + self.config.batch);
                ctx.set_timer(self.config.batch);
            }
        } else {
            self.updates_sent += 1;
            ctx.broadcast(EtobMsg::Update(self.graph.clone()));
        }
    }

    fn on_message(&mut self, from: ProcessId, msg: EtobMsg, ctx: &mut Context<'_, Self>) {
        match msg {
            EtobMsg::Update(graph) => {
                // On reception of update(CG_j): UnionCG(CG_j); UpdatePromote().
                self.graph.union(&graph);
                let grew = self.update_promote();
                if grew && self.config.eager_promote && *ctx.fd() == self.me {
                    ctx.broadcast(EtobMsg::Promote(self.promote.clone()));
                }
            }
            EtobMsg::Promote(sequence) => {
                // On reception of promote(promote_j): adopt it iff Ω_i = p_j.
                if *ctx.fd() == from && self.delivered != sequence {
                    self.delivered = sequence;
                    ctx.output(self.delivered.clone());
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, Self>) {
        // The process juggles up to three timer chains (flush, promote,
        // resend) through the single `on_timer` entry point, so each fire is
        // matched against absolute deadlines: a timer that has not crossed
        // its deadline does nothing and does not re-arm. (An unconditional
        // re-arm would spawn one fresh perpetual chain per foreign fire —
        // quadratic timer proliferation once a second chain exists.)
        let now = ctx.now().as_u64();
        if self.config.batching_enabled() && self.next_flush.is_some_and(|at| now >= at) {
            self.next_flush = None;
            self.updates_sent += 1;
            ctx.broadcast(EtobMsg::Update(self.graph.clone()));
        }
        if now >= self.next_promote {
            // On local timeout: if Ω_i = p_i then send promote(promote_i) to all.
            if *ctx.fd() == self.me {
                ctx.broadcast(EtobMsg::Promote(self.promote.clone()));
            }
            self.next_promote = now + self.config.promote_period;
            ctx.set_timer(self.config.promote_period);
        }
        self.maybe_resend(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::EtobChecker;
    use crate::workload::BroadcastWorkload;
    use ec_detectors::omega::{OmegaOracle, PreStabilization};
    use ec_sim::{
        FailurePattern, LinkFaults, LinkScope, NetworkModel, OutputHistory, PartitionSpec,
        ProcessSet, Time, WorldBuilder,
    };

    fn run_etob(
        n: usize,
        workload: &BroadcastWorkload,
        failures: FailurePattern,
        omega: OmegaOracle,
        network: NetworkModel,
        horizon: u64,
        config: EtobConfig,
    ) -> OutputHistory<DeliveredSequence> {
        let mut world = WorldBuilder::new(n)
            .network(network)
            .failures(failures)
            .seed(42)
            .build_with(|p| EtobOmega::new(p, config), omega);
        workload.submit_to(&mut world);
        world.run_until(horizon);
        world.trace().output_history()
    }

    #[test]
    fn stable_leader_from_start_gives_full_tob() {
        // Property P2: Ω stable from time 0 ⇒ strong TOB (tau = 0).
        let n = 4;
        let failures = FailurePattern::no_failures(n);
        let omega = OmegaOracle::stable_from_start(failures.clone());
        let workload = BroadcastWorkload::uniform(n, 12, 10, 7);
        let history = run_etob(
            n,
            &workload,
            failures.clone(),
            omega,
            NetworkModel::fixed_delay(2),
            5_000,
            EtobConfig::default(),
        );
        let checker = EtobChecker::from_delivered(
            &history,
            workload.records(),
            failures.correct(),
            Time::ZERO,
        );
        assert!(
            checker.check_all_with_causal().is_ok(),
            "{:?}",
            checker.check_all_with_causal()
        );
    }

    #[test]
    fn divergent_leaders_satisfy_etob_after_stabilization() {
        let n = 5;
        let failures = FailurePattern::no_failures(n);
        let tau_omega = Time::new(300);
        let omega = OmegaOracle::stabilizing_at(failures.clone(), tau_omega)
            .with_pre_stabilization(PreStabilization::SelfLeader);
        let workload = BroadcastWorkload::uniform(n, 15, 5, 11);
        let history = run_etob(
            n,
            &workload,
            failures.clone(),
            omega,
            NetworkModel::fixed_delay(3),
            8_000,
            EtobConfig::default(),
        );
        // tau = tau_Omega + Delta_t + Delta_c as in the paper's proof
        let tau = Time::new(300 + 5 + 3 + 1);
        let checker =
            EtobChecker::from_delivered(&history, workload.records(), failures.correct(), tau);
        assert!(checker.check_all().is_ok(), "{:?}", checker.check_all());
        // causal order holds from the beginning (property P3)
        assert!(checker.check_causal_order().is_empty());
    }

    #[test]
    fn causal_chains_are_respected_even_during_divergence() {
        let n = 4;
        let failures = FailurePattern::no_failures(n);
        let omega = OmegaOracle::stabilizing_at(failures.clone(), Time::new(400))
            .with_pre_stabilization(PreStabilization::RoundRobin { period: 25 });
        let workload = BroadcastWorkload::causal_chains(n, 3, 4, 5, 9);
        let history = run_etob(
            n,
            &workload,
            failures.clone(),
            omega,
            NetworkModel::uniform_delay(1, 4),
            8_000,
            EtobConfig::default(),
        );
        let checker = EtobChecker::from_delivered(
            &history,
            workload.records(),
            failures.correct(),
            Time::new(500),
        );
        assert!(
            checker.check_causal_order().is_empty(),
            "{:?}",
            checker.check_causal_order()
        );
        assert!(checker.check_all().is_ok(), "{:?}", checker.check_all());
    }

    #[test]
    fn liveness_without_correct_majority() {
        // Only 2 of 5 processes are correct: ETOB still delivers everything
        // broadcast by correct processes (no quorum is ever needed).
        let n = 5;
        let failures = FailurePattern::with_crashes(
            n,
            &[
                (ProcessId::new(2), Time::new(50)),
                (ProcessId::new(3), Time::new(50)),
                (ProcessId::new(4), Time::new(50)),
            ],
        );
        let omega = OmegaOracle::stable_from_start(failures.clone());
        // broadcasts happen after the crashes, from the surviving processes
        let mut workload = BroadcastWorkload::new();
        for k in 0..6 {
            workload.push(
                ProcessId::new(k % 2),
                100 + 10 * k as u64,
                format!("post-crash-{k}").into_bytes(),
                vec![],
            );
        }
        let history = run_etob(
            n,
            &workload,
            failures.clone(),
            omega,
            NetworkModel::fixed_delay(2),
            5_000,
            EtobConfig::default(),
        );
        let checker = EtobChecker::from_delivered(
            &history,
            workload.records(),
            failures.correct(),
            Time::ZERO,
        );
        assert!(checker.check_all().is_ok(), "{:?}", checker.check_all());
        // every broadcast message was actually delivered by the survivors
        let final_len = history
            .last(ProcessId::new(0))
            .map(|s| s.len())
            .unwrap_or(0);
        assert_eq!(final_len, 6);
    }

    #[test]
    fn deliveries_continue_inside_the_leaders_partition() {
        // The leader p0 is partitioned together with p1 away from the rest;
        // broadcasts originating inside the leader's side keep being delivered
        // there during the partition (eventual consistency is partition
        // tolerant), and everyone converges after the heal.
        let n = 5;
        let failures = FailurePattern::no_failures(n);
        let omega = OmegaOracle::stable_from_start(failures.clone());
        let minority: ProcessSet = [0, 1].into_iter().collect();
        let network = NetworkModel::fixed_delay(2).with_partition(
            Time::new(50),
            Time::new(600),
            PartitionSpec::isolate(minority, n),
        );
        let mut workload = BroadcastWorkload::new();
        for k in 0..5 {
            workload.push(
                ProcessId::new(k % 2), // inside the leader's side
                100 + 20 * k as u64,
                format!("partitioned-{k}").into_bytes(),
                vec![],
            );
        }
        let mut world = WorldBuilder::new(n)
            .network(network)
            .failures(failures.clone())
            .seed(9)
            .build_with(|p| EtobOmega::new(p, EtobConfig::default()), omega);
        workload.submit_to(&mut world);
        world.run_until(2_000);
        let history = world.trace().output_history();

        // during the partition (t = 550 < heal) p1 has already delivered
        // messages broadcast on its side
        let during = history
            .value_at(ProcessId::new(1), Time::new(550))
            .map(|s| s.len())
            .unwrap_or(0);
        assert!(
            during >= 1,
            "leader side must keep delivering during the partition"
        );

        // after the heal, everyone converges and full ETOB holds
        let checker = EtobChecker::from_delivered(
            &history,
            workload.records(),
            failures.correct(),
            Time::ZERO,
        );
        assert!(checker.check_all().is_ok(), "{:?}", checker.check_all());
    }

    #[test]
    fn eager_promotion_delivers_in_two_message_hops() {
        let n = 4;
        let delay = 10u64;
        let failures = FailurePattern::no_failures(n);
        let omega = OmegaOracle::stable_from_start(failures.clone());
        let mut workload = BroadcastWorkload::new();
        // broadcast from a non-leader process
        workload.push(ProcessId::new(2), 100, b"fast".to_vec(), vec![]);
        let history = run_etob(
            n,
            &workload,
            failures.clone(),
            omega,
            NetworkModel::fixed_delay(delay),
            2_000,
            EtobConfig::eager(),
        );
        let id = workload.ids()[0];
        // find the first time any non-broadcasting process delivered it
        let mut first_delivery = None;
        for p in (0..n).map(ProcessId::new) {
            if let Some(t) = history.first_time_where(p, |seq| seq.iter().any(|m| m.id == id)) {
                first_delivery = Some(first_delivery.map_or(t, |x: Time| x.min(t)));
            }
        }
        let latency = first_delivery
            .expect("delivered")
            .saturating_since(Time::new(100));
        // two communication steps of 10 ticks each, plus negligible local time
        assert!(latency >= 2 * delay, "latency {latency}");
        assert!(latency < 3 * delay, "latency {latency} should be < 3 hops");
    }

    #[test]
    fn batched_runs_satisfy_etob_with_fewer_update_broadcasts() {
        let n = 4;
        let failures = FailurePattern::no_failures(n);
        // spacing 1 ⇒ each origin submits every 4 ticks, well inside the
        // 10-tick flush window, so batching has something to coalesce
        let workload = BroadcastWorkload::uniform(n, 16, 10, 1);
        let run = |config: EtobConfig| {
            let omega = OmegaOracle::stable_from_start(failures.clone());
            let mut world = WorldBuilder::new(n)
                .network(NetworkModel::fixed_delay(2))
                .failures(failures.clone())
                .seed(42)
                .build_with(|p| EtobOmega::new(p, config), omega);
            workload.submit_to(&mut world);
            world.run_until(5_000);
            let updates: u64 = world
                .process_ids()
                .map(|p| world.algorithm(p).updates_sent())
                .sum();
            (world.trace().output_history(), updates)
        };
        let (unbatched, updates_unbatched) = run(EtobConfig::default());
        let (batched, updates_batched) = run(EtobConfig::batched(10));
        for history in [&unbatched, &batched] {
            let checker = EtobChecker::from_delivered(
                history,
                workload.records(),
                failures.correct(),
                Time::ZERO,
            );
            assert!(checker.check_all().is_ok(), "{:?}", checker.check_all());
        }
        // one update per op without batching; coalesced flushes with it
        assert_eq!(updates_unbatched, 16);
        assert!(
            updates_batched < updates_unbatched,
            "batching must coalesce update broadcasts ({updates_batched} vs {updates_unbatched})"
        );
        // both runs deliver the same set of messages everywhere
        let ids = |h: &OutputHistory<DeliveredSequence>| {
            let mut v: Vec<MsgId> = h
                .last(ProcessId::new(0))
                .map(|s| s.iter().map(|m| m.id).collect())
                .unwrap_or_default();
            v.sort();
            v
        };
        assert_eq!(ids(&unbatched), ids(&batched));
    }

    #[test]
    fn batched_single_origin_delivers_the_same_stable_sequence() {
        // All broadcasts originate at one process, so the promotion order is
        // forced (FIFO per origin): the batched and unbatched stable
        // sequences must be identical, not merely equivalent.
        let n = 3;
        let failures = FailurePattern::no_failures(n);
        let mut workload = BroadcastWorkload::new();
        for k in 0..8u64 {
            workload.push(
                ProcessId::new(1),
                20 + 4 * k,
                format!("op{k}").into_bytes(),
                vec![],
            );
        }
        let run = |config: EtobConfig| {
            run_etob(
                n,
                &workload,
                failures.clone(),
                OmegaOracle::stable_from_start(failures.clone()),
                NetworkModel::fixed_delay(2),
                4_000,
                config,
            )
        };
        let unbatched = run(EtobConfig::default());
        let batched = run(EtobConfig::batched(7));
        for p in (0..n).map(ProcessId::new) {
            let ids = |h: &OutputHistory<DeliveredSequence>| -> Vec<MsgId> {
                h.last(p)
                    .map(|s| s.iter().map(|m| m.id).collect())
                    .unwrap_or_default()
            };
            assert_eq!(ids(&unbatched), ids(&batched), "sequences differ at {p}");
            assert_eq!(ids(&unbatched).len(), 8);
        }
    }

    #[test]
    fn batching_flushes_at_the_deadline_not_per_operation() {
        // Two ops land inside one flush window; the update goes out once.
        let mut alg = EtobOmega::new(ProcessId::new(0), EtobConfig::batched(5));
        let mut actions = ec_sim::Actions::<EtobOmega>::new();
        {
            let mut ctx = Context::new(
                ProcessId::new(0),
                Time::new(10),
                3,
                ProcessId::new(0),
                &mut actions,
            );
            alg.on_input(
                EtobBroadcast::new(ProcessId::new(0), 1, b"a".to_vec()),
                &mut ctx,
            );
            alg.on_input(
                EtobBroadcast::new(ProcessId::new(0), 2, b"b".to_vec()),
                &mut ctx,
            );
        }
        assert!(actions.sends.is_empty(), "ops must be buffered, not sent");
        // only the first op arms a flush timer
        assert_eq!(actions.timers, vec![5]);

        // before the deadline the timer does nothing
        let mut early = ec_sim::Actions::<EtobOmega>::new();
        {
            let mut ctx = Context::new(
                ProcessId::new(0),
                Time::new(12),
                3,
                ProcessId::new(1),
                &mut early,
            );
            alg.on_timer(&mut ctx);
        }
        assert!(early.sends.is_empty());

        // at the deadline one update carrying both messages goes to all
        let mut flush = ec_sim::Actions::<EtobOmega>::new();
        {
            let mut ctx = Context::new(
                ProcessId::new(0),
                Time::new(15),
                3,
                ProcessId::new(1),
                &mut flush,
            );
            alg.on_timer(&mut ctx);
        }
        assert_eq!(flush.sends.len(), 3, "one broadcast to the 3 processes");
        assert!(flush
            .sends
            .iter()
            .all(|(_, m)| matches!(m, EtobMsg::Update(g) if g.len() == 2)));
        assert_eq!(alg.updates_sent(), 1);
    }

    #[test]
    fn resend_restores_eventual_delivery_over_lossy_links() {
        // Half the remote transmissions in the first 400 ticks are dropped
        // and a fifth are duplicated; with anti-entropy retransmission every
        // message still reaches every process, in one agreed order.
        let n = 4;
        let failures = FailurePattern::no_failures(n);
        let omega = OmegaOracle::stable_from_start(failures.clone());
        let network = NetworkModel::fixed_delay(2).with_faults(
            Time::ZERO,
            Time::new(400),
            LinkScope::All,
            LinkFaults::new(0.5, 0.2, 3),
        );
        let workload = BroadcastWorkload::uniform(n, 10, 10, 8);
        let history = run_etob(
            n,
            &workload,
            failures.clone(),
            omega,
            network,
            6_000,
            EtobConfig::default().with_resend(15),
        );
        let reference: Vec<MsgId> = history
            .last(ProcessId::new(0))
            .map(|s| s.iter().map(|m| m.id).collect())
            .expect("p0 delivered");
        assert_eq!(reference.len(), 10, "every broadcast must survive loss");
        for p in (0..n).map(ProcessId::new) {
            let ids: Vec<MsgId> = history
                .last(p)
                .map(|s| s.iter().map(|m| m.id).collect())
                .unwrap_or_default();
            assert_eq!(ids, reference, "sequences diverged at {p}");
        }
        // duplication must not deliver any message twice
        let mut deduped = reference.clone();
        deduped.sort();
        deduped.dedup();
        assert_eq!(deduped.len(), reference.len());
    }

    #[test]
    fn causal_graph_operations() {
        let a = AppMessage::new(MsgId::new(ProcessId::new(0), 1), b"a".to_vec());
        let b = AppMessage::with_deps(MsgId::new(ProcessId::new(1), 1), b"b".to_vec(), vec![a.id]);
        let mut g = CausalGraph::new();
        assert!(g.is_empty());
        g.update(a.clone());
        g.update(b.clone());
        assert_eq!(g.len(), 2);
        assert!(g.contains(a.id));
        assert_eq!(g.predecessors(b.id).collect::<Vec<_>>(), vec![a.id]);
        assert_eq!(g.edges().count(), 1);

        let mut h = CausalGraph::new();
        let c = AppMessage::new(MsgId::new(ProcessId::new(2), 1), b"c".to_vec());
        h.update(c.clone());
        g.union(&h);
        assert_eq!(g.len(), 3);
        assert_eq!(g.messages().count(), 3);
    }

    #[test]
    fn update_promote_holds_back_messages_with_unknown_dependencies() {
        let a = AppMessage::new(MsgId::new(ProcessId::new(0), 1), b"a".to_vec());
        let b = AppMessage::with_deps(MsgId::new(ProcessId::new(1), 1), b"b".to_vec(), vec![a.id]);
        let mut alg = EtobOmega::new(ProcessId::new(0), EtobConfig::default());
        // b arrives without a: held back
        alg.graph.update(b.clone());
        alg.update_promote();
        assert!(alg.promotion_sequence().is_empty());
        // once a arrives, both are appended in causal order
        alg.graph.update(a.clone());
        alg.update_promote();
        let ids: Vec<MsgId> = alg.promotion_sequence().iter().map(|m| m.id).collect();
        assert_eq!(ids, vec![a.id, b.id]);
        assert!(format!("{alg:?}").contains("EtobOmega"));
    }
}

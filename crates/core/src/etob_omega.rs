//! **Algorithm 5** of the paper: eventual total order broadcast (ETOB)
//! directly from Ω.
//!
//! Every process that broadcasts a message sends its causality graph to
//! everyone. Every process maintains (1) a causality graph `CG_i` of all
//! messages it knows about and (2) a *promotion sequence* `promote_i`, a
//! linearization of `CG_i` that respects causal order and only ever grows by
//! appending. As long as a process considers itself the leader (its Ω module
//! outputs itself), it periodically sends its promotion sequence to everyone.
//! A process adopts a received promotion sequence as its delivered sequence
//! `d_i` only if the sender is the process its own Ω module currently trusts.
//!
//! The three headline properties of the paper:
//!
//! * **P1 — two communication steps.** A broadcast reaches the leader in one
//!   message hop (`update`) and the resulting promotion sequence reaches all
//!   processes in one more hop (`promote`). With
//!   [`EtobConfig::eager_promote`] the leader promotes immediately upon
//!   learning a new message, making the two-hop latency visible end to end;
//!   otherwise a fraction of the promotion period is added.
//! * **P2 — strong consistency under a stable leader.** If Ω outputs the same
//!   leader at every process from the very beginning, delivered sequences are
//!   prefix-ordered from time 0: the algorithm implements full TOB.
//! * **P3 — causal order always.** Promotion sequences linearize the causal
//!   graph, so causal order holds even while processes trust different
//!   leaders.
//!
//! # Wire format: delta state vs the paper's full-graph broadcasts
//!
//! Algorithm 5 as written broadcasts the *entire* causality graph in every
//! `update` and the *entire* promotion sequence in every `promote`, so wire
//! traffic per broadcast grows linearly with history length (and total
//! traffic quadratically). This module keeps that literal protocol available
//! ([`EtobConfig::full_graph`], messages [`EtobMsg::Update`] /
//! [`EtobMsg::Promote`]) as the reference specification, and by default
//! ([`EtobConfig::delta_sync`]) runs a correctness-preserving refinement:
//!
//! * `update` becomes [`EtobMsg::Delta`]: the nodes added since the sender's
//!   last broadcast, plus an exact digest ([`VersionVector`]) of the
//!   sender's whole graph. Each sender also tracks a per-peer *acked*
//!   frontier — everything a peer has provably confirmed knowing through the
//!   digests it sent — and excludes acked nodes from the per-peer copies.
//! * A receiver whose merged graph does not cover the incoming digest has
//!   detected a gap (a lost or not-yet-delivered earlier delta) and pulls
//!   with [`EtobMsg::SyncRequest`], carrying its own digest; the repairer
//!   answers with exactly the missing nodes. Anti-entropy retransmission
//!   ([`EtobConfig::resend_period`]) pushes per-peer unacked nodes, so the
//!   two mechanisms together restore eventual delivery over lossy links.
//! * `promote` becomes [`EtobMsg::PromoteDelta`]: the suffix appended since
//!   the leader's previous promote broadcast, keyed by the prefix length and
//!   a rolling FNV-1a hash of the prefix identifiers. A receiver whose
//!   delivered sequence does not match the keyed prefix falls back to a full
//!   resend via [`EtobMsg::PromoteRequest`].
//!
//! Both refinements only change *how* graph and sequence state move between
//! processes, never what the states converge to — the delta-equivalence
//! property tests (`crates/core/tests/batching_equivalence.rs`) and
//! experiment E12 pin delivered-sequence equality against the full-graph
//! reference, including under message loss and duplication.
//!
//! # Stable-prefix compaction
//!
//! Even with delta wire traffic, *resident* state (graph, promotion
//! sequence, delivered sequence) still grows with history. With
//! [`EtobConfig::compact_after`] enabled, processes exchange
//! [`EtobMsg::Ack`] evidence at promote cadence and fold every delivered
//! prefix that the whole group has both delivered (hash-checked acks) and
//! digest-acked (graph frontiers) — bounding resident state by the
//! in-flight window (experiment E13) while the rolling prefix hashes keep
//! histories comparable across different fold points. Folded entries cannot
//! be re-served by anti-entropy; a process that loses its state after the
//! group folds recovers through `ec-replication`'s durable facade instead.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use ec_sim::{Algorithm, Context, ProcessId};

use crate::types::{
    decode_node, decode_sequence, AppMessage, DeliveredSequence, EtobBroadcast, MsgId,
};
use crate::version::VersionVector;

/// The causality graph `CG_i`: all messages known to a process together with
/// the causal edges `(m′, m)` for every declared dependency `m′ ∈ C(m)`.
///
/// Under stable-prefix compaction ([`EtobConfig::compact_after`]) a causally
/// closed, globally acknowledged prefix of the graph can be *retired*
/// ([`CausalGraph::retire`]): the nodes and their edges are dropped, but
/// their identifiers stay in the [`CausalGraph::digest`] (which never
/// shrinks) and move into the [`CausalGraph::compacted`] frontier. Digest
/// gap detection therefore keeps working across the compaction boundary —
/// a peer's frontier covering a retired id is still covered by ours — while
/// [`CausalGraph::missing_from`] can only serve the *resident* nodes.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct CausalGraph {
    nodes: BTreeMap<MsgId, AppMessage>,
    /// Edges `(before, after)`, stored as the predecessor list of each
    /// `after` node. Keyed by `after` because the promotion fixpoint asks
    /// "are all predecessors of `id` promoted?" once per candidate per
    /// pass — with a flat edge set that query was a full scan of every
    /// edge in the graph; here it is one map lookup plus an inline list
    /// (messages rarely declare more than a couple of dependencies, so
    /// the list almost never allocates). Lists keep first-seen dependency
    /// order and entries are dropped when their last edge retires, so two
    /// graphs built from the same messages compare equal field-by-field.
    preds: BTreeMap<MsgId, crate::inline::InlineVec<MsgId, 4>>,
    /// Number of edges across all predecessor lists (wire accounting).
    edge_count: usize,
    /// Exact digest of every identifier ever added — resident *and*
    /// compacted — maintained incrementally and never shrunk.
    digest: VersionVector,
    /// Identifiers retired by compaction: still in the digest, no longer
    /// resident, and refused re-admission by [`CausalGraph::update`].
    compacted: VersionVector,
}

impl CausalGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a graph recovered from durable state: no resident nodes, with
    /// `frontier` recorded as the already-compacted (and digested) history.
    pub fn recovered(frontier: VersionVector) -> Self {
        CausalGraph {
            nodes: BTreeMap::new(),
            preds: BTreeMap::new(),
            edge_count: 0,
            digest: frontier.clone(),
            compacted: frontier,
        }
    }

    /// Records the edge `(before, after)` unless it is already present.
    fn add_edge(&mut self, before: MsgId, after: MsgId) {
        let list = self.preds.entry(after).or_default();
        if !list.contains(&before) {
            list.push(before);
            self.edge_count += 1;
        }
    }

    /// `UpdateCG(m, C(m))`: adds the node `m` and the edges
    /// `{(m′, m) | m′ ∈ C(m)}`. Returns `true` if the node was new.
    /// A compacted identifier is refused (it is history, not news).
    pub fn update(&mut self, message: AppMessage) -> bool {
        if self.compacted.contains(message.id) {
            return false;
        }
        for dep in &message.deps {
            self.add_edge(*dep, message.id);
        }
        self.digest.insert(message.id);
        self.nodes.insert(message.id, message).is_none()
    }

    /// `UnionCG(CG_j)`: merges another causality graph into this one.
    pub fn union(&mut self, other: &CausalGraph) {
        for (id, msg) in &other.nodes {
            if !self.nodes.contains_key(id) && !self.compacted.contains(*id) {
                self.digest.insert(*id);
                self.nodes.insert(*id, msg.clone());
            }
        }
        for (after, list) in &other.preds {
            if self.compacted.contains(*after) {
                continue;
            }
            for before in list {
                if !self.compacted.contains(*before) {
                    self.add_edge(*before, *after);
                }
            }
        }
    }

    /// Retires a causally closed set of nodes folded into a snapshot: drops
    /// the nodes and their edges, keeps their identifiers in the digest, and
    /// records them as compacted.
    pub fn retire<I: IntoIterator<Item = MsgId>>(&mut self, ids: I) {
        let retired: BTreeSet<MsgId> = ids.into_iter().collect();
        for id in &retired {
            self.compacted.insert(*id);
            // A delivered entry adopted through a promote delta may never
            // have become a resident node; retiring still claims it in the
            // digest so peers' frontiers covering it stay covered by ours.
            self.digest.insert(*id);
            self.nodes.remove(id);
        }
        let mut dropped = 0usize;
        self.preds.retain(|after, list| {
            if retired.contains(after) {
                dropped += list.len();
                return false;
            }
            let before_len = list.len();
            let kept: crate::inline::InlineVec<MsgId, 4> = list
                .iter()
                .copied()
                .filter(|before| !retired.contains(before))
                .collect();
            dropped += before_len - kept.len();
            let keep = !kept.is_empty();
            *list = kept;
            keep
        });
        self.edge_count -= dropped;
    }

    /// The identifiers retired by compaction.
    pub fn compacted(&self) -> &VersionVector {
        &self.compacted
    }

    /// Returns `true` if the identifier was retired by compaction.
    pub fn is_compacted(&self, id: MsgId) -> bool {
        self.compacted.contains(id)
    }

    /// The exact digest of the graph's node identifiers.
    pub fn digest(&self) -> &VersionVector {
        &self.digest
    }

    /// The nodes of the graph not contained in `known`, in identifier order
    /// — the repair payload answering a [`EtobMsg::SyncRequest`].
    pub fn missing_from(&self, known: &VersionVector) -> Vec<AppMessage> {
        self.nodes
            .iter()
            .filter(|(id, _)| !known.contains(**id))
            .map(|(_, m)| m.clone())
            .collect()
    }

    /// The node with identifier `id`, if known.
    pub fn get(&self, id: MsgId) -> Option<&AppMessage> {
        self.nodes.get(&id)
    }

    /// The modeled wire size of the full graph in bytes (nodes plus 32 bytes
    /// per explicit edge) — what a paper-literal `update(CG_i)` costs.
    pub fn wire_bytes(&self) -> u64 {
        8 + self.nodes.values().map(AppMessage::wire_bytes).sum::<u64>()
            + 8
            + 32 * self.edge_count as u64
    }

    /// Number of *resident* messages (compacted history excluded) — the
    /// quantity bounded by compaction, reported by experiment E13.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if no message is resident.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Returns `true` if the graph holds the message as a resident node.
    pub fn contains(&self, id: MsgId) -> bool {
        self.nodes.contains_key(&id)
    }

    /// The causal predecessors of `id` recorded in the graph. One map
    /// lookup plus an inline-list walk — the promotion fixpoint calls this
    /// once per candidate per pass, so it must not scan the whole edge set.
    pub fn predecessors(&self, id: MsgId) -> impl Iterator<Item = MsgId> + '_ {
        self.preds
            .get(&id)
            .map(|list| list.as_slice())
            .unwrap_or(&[])
            .iter()
            .copied()
    }

    /// The messages of the graph, keyed by identifier.
    pub fn messages(&self) -> impl Iterator<Item = &AppMessage> + '_ {
        self.nodes.values()
    }

    /// The causal edges of the graph, grouped by successor in identifier
    /// order (each successor's dependencies in first-seen order).
    pub fn edges(&self) -> impl Iterator<Item = (MsgId, MsgId)> + '_ {
        self.preds
            .iter()
            .flat_map(|(after, list)| list.iter().map(move |before| (*before, *after)))
    }
}

/// Messages of [`EtobOmega`].
///
/// [`EtobMsg::Update`] and [`EtobMsg::Promote`] are the paper-literal
/// full-state messages (sent in [`EtobConfig::full_graph`] mode, and
/// `Promote` additionally as the fallback full resend of the delta mode);
/// the other variants carry the delta-state wire format (see the module
/// docs).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EtobMsg {
    /// `update(CG_i)`: the sender's *entire* causality graph (paper mode).
    Update(CausalGraph),
    /// Delta update: the nodes the receiver is believed to be missing, plus
    /// an exact digest of the sender's whole graph for gap detection.
    Delta {
        /// Graph nodes new to the receiver (possibly empty — a pure digest
        /// beacon).
        nodes: Vec<AppMessage>,
        /// Digest of the sender's full graph *after* the nodes.
        frontier: VersionVector,
    },
    /// Digest pull: the receiver detected that the sender knows messages it
    /// does not, and asks for everything not covered by `digest`.
    SyncRequest {
        /// The requester's full graph digest.
        digest: VersionVector,
    },
    /// `promote(promote_i)`: the sender's *entire* promotion sequence
    /// (paper mode, and the delta mode's full-resend fallback).
    Promote(Vec<AppMessage>),
    /// Delta promote: the suffix of the leader's promotion sequence since
    /// its previous promote broadcast, keyed by the prefix length and a
    /// rolling FNV-1a hash of the prefix identifiers.
    PromoteDelta {
        /// Length of the unsent prefix (the leader's sequence length at the
        /// previous broadcast).
        base: usize,
        /// Rolling hash of the first `base` identifiers of the leader's
        /// sequence; a receiver reconstructs `prefix ++ suffix` only if its
        /// own delivered prefix matches.
        prefix_hash: u64,
        /// The appended entries `promote_i[base..]`.
        suffix: Vec<AppMessage>,
    },
    /// A receiver could not verify a [`EtobMsg::PromoteDelta`] prefix (it
    /// followed a different leader, missed a promote, or the leader
    /// restarted) and asks for a full [`EtobMsg::Promote`] resend.
    PromoteRequest,
    /// Compaction evidence beacon: "my delivered sequence has a verified
    /// prefix of `delivered` entries hashing to `hash`". Broadcast every
    /// promote period when [`EtobConfig::compact_after`] is enabled; a
    /// prefix becomes foldable only once *every* peer has acknowledged it
    /// this way (and has acked the graph nodes through its digests), so no
    /// live peer can ever need a folded node again.
    Ack {
        /// Absolute length of the sender's hash-verified delivered prefix.
        delivered: u64,
        /// Rolling FNV-1a hash of the first `delivered` identifiers.
        hash: u64,
    },
}

impl EtobMsg {
    /// The modeled wire size of the message in bytes (1 tag byte plus the
    /// variant contents; see [`AppMessage::wire_bytes`] for the model).
    pub fn wire_bytes(&self) -> u64 {
        let body = match self {
            EtobMsg::Update(graph) => graph.wire_bytes(),
            EtobMsg::Delta { nodes, frontier } => {
                8 + nodes.iter().map(AppMessage::wire_bytes).sum::<u64>() + frontier.wire_bytes()
            }
            EtobMsg::SyncRequest { digest } => digest.wire_bytes(),
            EtobMsg::Promote(sequence) => {
                8 + sequence.iter().map(AppMessage::wire_bytes).sum::<u64>()
            }
            EtobMsg::PromoteDelta { suffix, .. } => {
                8 + 8 + 8 + suffix.iter().map(AppMessage::wire_bytes).sum::<u64>()
            }
            EtobMsg::PromoteRequest => 0,
            EtobMsg::Ack { .. } => 8 + 8,
        };
        1 + body
    }
}

/// Configuration of [`EtobOmega`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EtobConfig {
    /// Ticks between the leader's periodic `promote` broadcasts.
    pub promote_period: u64,
    /// If `true`, a process that currently considers itself the leader sends
    /// a `promote` immediately whenever its promotion sequence grows, instead
    /// of waiting for the next period. This realizes the paper's optimal
    /// two-communication-step delivery; ablation A2 quantifies the trade-off.
    pub eager_promote: bool,
    /// Message batching: the maximum number of ticks an application message
    /// may wait before the `update` carrying it is broadcast.
    ///
    /// With `batch == 0` (the default) every `broadcastETOB(m, C(m))`
    /// invocation broadcasts `update(CG_i)` immediately — one broadcast per
    /// operation, the literal Algorithm 5. With `batch > 0` the process
    /// instead coalesces all operations submitted within a `batch`-tick
    /// window into a *single* `update(CG_i)` broadcast, so the hot path
    /// scales with operations per flush rather than per message. This is
    /// correct because the flushed broadcast covers every pending message at
    /// once: the whole causality graph in full-graph mode, and everything
    /// since the previous broadcast in delta mode.
    /// Experiment E11 quantifies the broadcasts-per-op reduction; the
    /// trade-off is up to `batch` extra ticks of delivery latency.
    pub batch: u64,
    /// Anti-entropy retransmission: every `resend_period` ticks, a process
    /// whose causality graph contains messages missing from its delivered
    /// sequence re-broadcasts `update(CG_i)`. `0` (the default) disables it.
    ///
    /// The paper assumes reliable links, under which a single `update`
    /// broadcast suffices. Over the chaos subsystem's *lossy* links the
    /// algorithm instead relies on the fairness assumption (each transmission
    /// attempt succeeds with probability `1 - drop_prob > 0`, see
    /// `ec_sim::LinkFaults`): enabling retransmission turns that
    /// infinitely-often delivery guarantee into eventual delivery of every
    /// payload, restoring convergence. Retransmission stops by itself once
    /// the local delivered sequence covers the local graph.
    ///
    /// In delta mode the retransmission is *targeted*: each peer is sent
    /// only the nodes it has not acked (via the digests it sent back), so a
    /// caught-up peer receives a constant-size digest beacon instead of the
    /// whole graph.
    pub resend_period: u64,
    /// Delta-state wire format (the default). When `true`, `update`
    /// broadcasts carry only the suffix since the sender's last broadcast
    /// (per-peer, minus acked nodes) plus an exact digest, gaps are healed
    /// by digest-triggered pulls, and `promote` broadcasts carry hash-keyed
    /// suffixes. When `false`, every message carries the full state — the
    /// literal Algorithm 5 wire format of the paper, kept as the reference
    /// the equivalence tests and experiment E12 compare against.
    pub delta_sync: bool,
    /// Stable-prefix compaction granularity, in delivered entries. `0` (the
    /// default) disables compaction: graph, promotion sequence and delivered
    /// sequence keep the whole history — the paper's model and the
    /// conformance reference. With `compact_after = k > 0` (delta mode
    /// only), every process periodically folds the longest multiple-of-`k`
    /// delivered prefix that is (a) hash-verified against the leader's
    /// lineage, (b) [`EtobMsg::Ack`]-acknowledged as delivered by **every**
    /// peer, and (c) covered by every peer's graph digest — dropping those
    /// entries from the graph, the promotion sequence and the delivered
    /// vector, so resident state stays bounded by the in-flight window
    /// instead of growing with history (experiment E13).
    ///
    /// Soundness: folding requires unanimous evidence, so no *live* peer can
    /// ever need a folded node again; a below-fold rewrite attempt (possible
    /// only while Ω has not stabilized) is rejected and counted in
    /// [`EtobOmega::compact_conflicts`]. A process that loses its state
    /// *after* the group folds (e.g. blank-slate recovery) cannot be healed
    /// by anti-entropy — folded nodes cannot be re-served — and needs
    /// durable recovery (`ec-replication`'s `durable` facade) instead.
    pub compact_after: u64,
}

impl Default for EtobConfig {
    fn default() -> Self {
        EtobConfig {
            promote_period: 5,
            eager_promote: false,
            batch: 0,
            resend_period: 0,
            delta_sync: true,
            compact_after: 0,
        }
    }
}

impl EtobConfig {
    /// Configuration with eager promotion enabled (used by the latency
    /// experiment E1).
    pub fn eager() -> Self {
        EtobConfig {
            eager_promote: true,
            ..Default::default()
        }
    }

    /// The paper-literal wire format: full-graph `update(CG_i)` and
    /// full-sequence `promote(promote_i)` broadcasts (the reference mode the
    /// delta-equivalence tests and experiment E12 compare against).
    pub fn full_graph() -> Self {
        EtobConfig {
            delta_sync: false,
            ..Default::default()
        }
    }

    /// Builder-style helper selecting the wire format (see
    /// [`EtobConfig::delta_sync`]).
    pub fn with_delta_sync(mut self, delta_sync: bool) -> Self {
        self.delta_sync = delta_sync;
        self
    }

    /// Configuration that coalesces operations submitted within a
    /// `flush_interval`-tick window into one `update` broadcast (used by the
    /// sharded service and by experiment E11).
    pub fn batched(flush_interval: u64) -> Self {
        EtobConfig {
            batch: flush_interval,
            ..Default::default()
        }
    }

    /// Returns `true` if message batching is enabled.
    pub fn batching_enabled(&self) -> bool {
        self.batch > 0
    }

    /// Builder-style helper enabling anti-entropy retransmission every
    /// `period` ticks (used by fault-injecting runs; see
    /// [`EtobConfig::resend_period`]).
    pub fn with_resend(mut self, period: u64) -> Self {
        self.resend_period = period;
        self
    }

    /// Builder-style helper enabling stable-prefix compaction with the given
    /// chunk granularity (see [`EtobConfig::compact_after`]). Effective in
    /// delta mode only; the paper-literal full-graph mode always keeps the
    /// whole history.
    pub fn with_compaction(mut self, chunk: u64) -> Self {
        self.compact_after = chunk;
        self
    }
}

/// FNV-1a offset basis: the rolling prefix hash of the empty sequence.
/// Aliases [`crate::types::SEQ_HASH_SEED`], the seed the durable layer
/// persists alongside snapshots.
const FNV_OFFSET: u64 = crate::types::SEQ_HASH_SEED;

/// Extends a rolling FNV-1a prefix hash with one message identifier
/// (delegates to the workspace-wide [`crate::types::seq_hash_step`]).
fn hash_step(h: u64, id: MsgId) -> u64 {
    crate::types::seq_hash_step(h, id)
}

/// The rolling prefix hashes of a sequence: `out[k]` hashes the identifiers
/// of the first `k` entries (`out.len() == sequence.len() + 1`).
fn prefix_hashes(sequence: &[AppMessage]) -> Vec<u64> {
    prefix_hashes_from(FNV_OFFSET, sequence)
}

/// The rolling prefix hashes of a sequence continuing from `h0` — the hash
/// of an already-folded absolute prefix: `out[k]` extends `h0` with the
/// first `k` identifiers (`out.len() == sequence.len() + 1`).
fn prefix_hashes_from(h0: u64, sequence: &[AppMessage]) -> Vec<u64> {
    let mut out = Vec::with_capacity(sequence.len() + 1);
    let mut h = h0;
    out.push(h);
    for m in sequence {
        h = hash_step(h, m.id);
        out.push(h);
    }
    out
}

/// Algorithm 5: ETOB from Ω.
pub struct EtobOmega {
    me: ProcessId,
    config: EtobConfig,
    /// `d_i`: the delivered sequence output by this process — the *resident
    /// tail* beyond the `folded` absolute offset (the whole sequence while
    /// compaction is off or has not fired, since `folded` is then 0).
    delivered: Vec<AppMessage>,
    /// Rolling prefix hashes of `delivered` (`delivered.len() + 1` entries),
    /// verifying [`EtobMsg::PromoteDelta`] prefixes in O(1). Hashes are
    /// *absolute*: entry `k` hashes the first `folded + k` identifiers of
    /// the whole history, so entry 0 is the fold hash ([`FNV_OFFSET`] while
    /// nothing is folded) and hashes stay comparable across processes with
    /// different fold points.
    delivered_hashes: Vec<u64>,
    /// `promote_i`: the sequence this process promotes while it trusts
    /// itself — like `delivered`, the resident tail beyond `folded`.
    promote: Vec<AppMessage>,
    /// Rolling *absolute* prefix hashes of `promote`
    /// (`promote.len() + 1` entries, entry 0 the fold hash).
    promote_hashes: Vec<u64>,
    /// identifiers already in `promote`, for O(log n) membership checks.
    promoted_ids: BTreeSet<MsgId>,
    /// Graph nodes *not yet* in `promote` — the candidate set
    /// `UpdatePromote()` scans. Maintained incrementally at every graph
    /// insertion so the scan is O(pending), not O(graph): without this the
    /// per-message cost grows with the whole retained history, which is
    /// exactly the unbounded-residency failure mode experiment E13 measures.
    unpromoted: BTreeSet<MsgId>,
    /// `CG_i`: the causality graph.
    graph: CausalGraph,
    /// Delta state: identifiers of graph nodes added since this process's
    /// last `update` broadcast — the broadcast suffix, maintained
    /// incrementally so a broadcast never rescans the graph.
    unsent: Vec<MsgId>,
    /// Delta state: per-peer *acked* frontiers — everything a peer has
    /// provably confirmed knowing, through the digests it sent (deltas,
    /// beacons and sync requests). Only ever advanced by evidence from the
    /// peer itself, so targeted resends never skip a lost node.
    peer_acked: BTreeMap<ProcessId, VersionVector>,
    /// Delta state: *absolute* length of `promote` (fold offset included)
    /// at the previous promote broadcast.
    last_promote_broadcast: usize,
    /// Batching state: absolute deadline of the pending flush, if any.
    next_flush: Option<u64>,
    /// Batching state: absolute deadline of the next periodic promote.
    next_promote: u64,
    /// Anti-entropy state: absolute deadline of the next resend check.
    next_resend: u64,
    /// Number of `update` broadcasts sent (one per flush in batch mode, one
    /// per operation otherwise) — reported by the batching experiment E11.
    updates_sent: u64,
    /// Number of digest pulls ([`EtobMsg::SyncRequest`]) this process sent —
    /// each one is a detected update gap (loss, reorder or rejoin).
    sync_pulls: u64,
    /// Number of full-promote pulls ([`EtobMsg::PromoteRequest`]) this
    /// process sent — each one is a promote prefix it could not verify.
    promote_pulls: u64,
    /// Number of incoming messages dropped as malformed
    /// ([`crate::types::DecodeError`]): duplicate-id sequences,
    /// self-dependent nodes. Dropped input never touches protocol state.
    malformed: u64,
    /// Compaction state: absolute number of delivered entries folded out of
    /// the resident sequences (see [`EtobConfig::compact_after`]).
    folded: usize,
    /// Compaction evidence: per-peer maximum [`EtobMsg::Ack`]ed delivered
    /// prefix length — only ever advanced by acks whose hash matched this
    /// process's own delivered lineage.
    peer_delivered_ack: BTreeMap<ProcessId, u64>,
    /// Number of fold operations performed by this incarnation.
    compactions: u64,
    /// Total delivered entries folded by this incarnation.
    compacted_total: u64,
    /// Below-fold rewrite or divergent-prefix adoption attempts rejected —
    /// possible only while Ω is unstable; each one is a dropped prefix that
    /// disagreed with the compacted history.
    compact_conflicts: u64,
    /// Optional telemetry recorder ([`crate::types::Instrumented`]):
    /// lifecycle events and latency clocks, attached by the engines and
    /// never consulted by the protocol itself.
    telemetry: Option<Box<ec_telemetry::Recorder>>,
    /// Reusable candidate buffer for the `UpdatePromote()` fixpoint. The
    /// fixpoint runs on every update delivery, so a fresh `Vec` per pass
    /// was measurable allocator churn on the per-operation hot path.
    promote_scratch: Vec<MsgId>,
}

impl EtobOmega {
    /// Creates the automaton for process `me`.
    ///
    /// # Example
    ///
    /// Run Algorithm 5 over the simulator with a stable leader and check that
    /// a broadcast is delivered everywhere:
    ///
    /// ```
    /// use ec_core::etob_omega::{EtobConfig, EtobOmega};
    /// use ec_core::workload::BroadcastWorkload;
    /// use ec_detectors::omega::OmegaOracle;
    /// use ec_sim::{FailurePattern, NetworkModel, ProcessId, WorldBuilder};
    ///
    /// let n = 3;
    /// let failures = FailurePattern::no_failures(n);
    /// let omega = OmegaOracle::stable_from_start(failures.clone());
    /// let mut world = WorldBuilder::new(n)
    ///     .network(NetworkModel::fixed_delay(2))
    ///     .failures(failures)
    ///     .build_with(|p| EtobOmega::new(p, EtobConfig::default()), omega);
    /// let workload = BroadcastWorkload::uniform(n, 4, 10, 10);
    /// workload.submit_to(&mut world);
    /// world.run_until(1_000);
    /// for p in world.process_ids() {
    ///     assert_eq!(world.algorithm(p).delivered().len(), 4);
    /// }
    /// ```
    pub fn new(me: ProcessId, config: EtobConfig) -> Self {
        EtobOmega {
            me,
            config,
            delivered: Vec::new(),
            delivered_hashes: vec![FNV_OFFSET],
            promote: Vec::new(),
            promote_hashes: vec![FNV_OFFSET],
            promoted_ids: BTreeSet::new(),
            unpromoted: BTreeSet::new(),
            graph: CausalGraph::new(),
            unsent: Vec::new(),
            peer_acked: BTreeMap::new(),
            last_promote_broadcast: 0,
            next_flush: None,
            next_promote: 0,
            next_resend: 0,
            updates_sent: 0,
            sync_pulls: 0,
            promote_pulls: 0,
            malformed: 0,
            folded: 0,
            peer_delivered_ack: BTreeMap::new(),
            compactions: 0,
            compacted_total: 0,
            compact_conflicts: 0,
            telemetry: None,
            promote_scratch: Vec::new(),
        }
    }

    /// Number of `update` broadcasts this process has performed. In batch
    /// mode several operations share one broadcast, so this is the quantity
    /// the batching experiment (E11) compares against delivered operations.
    pub fn updates_sent(&self) -> u64 {
        self.updates_sent
    }

    /// Number of digest pulls ([`EtobMsg::SyncRequest`]) this process sent:
    /// each one is an update gap it detected (from loss, reordering or a
    /// rejoin) and healed through the repair path.
    pub fn sync_pulls(&self) -> u64 {
        self.sync_pulls
    }

    /// Number of full-promote pulls ([`EtobMsg::PromoteRequest`]) this
    /// process sent: promote prefixes it could not verify and re-fetched in
    /// full.
    pub fn promote_pulls(&self) -> u64 {
        self.promote_pulls
    }

    /// Number of incoming messages this process dropped as malformed
    /// (failed [`crate::types::decode_sequence`]/[`crate::types::decode_node`]
    /// validation). A non-zero count under a byzantine-free nemesis is a bug.
    pub fn malformed(&self) -> u64 {
        self.malformed
    }

    /// Total number of entries delivered over the whole history — the
    /// folded prefix plus the resident tail. With compaction off this
    /// equals `delivered().len()`.
    pub fn delivered_total(&self) -> u64 {
        (self.folded + self.delivered.len()) as u64
    }

    /// Rolling FNV-1a identifier hash of the entire delivered history,
    /// folded prefix included: equal hashes across processes certify
    /// identical histories even after the prefixes were compacted away.
    pub fn delivered_hash(&self) -> u64 {
        self.delivered_hashes.last().copied().unwrap_or(FNV_OFFSET)
    }

    /// Absolute number of delivered entries folded out of resident state.
    pub fn folded(&self) -> u64 {
        self.folded as u64
    }

    /// Number of fold operations this incarnation has performed.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Total delivered entries folded by this incarnation's fold operations
    /// (differs from [`EtobOmega::folded`] only after durable recovery,
    /// which restores the fold offset without re-performing the folds).
    pub fn compacted_total(&self) -> u64 {
        self.compacted_total
    }

    /// Below-fold rewrites and divergent-prefix adoptions rejected. Non-zero
    /// only if compaction fired while Ω was still unstable.
    pub fn compact_conflicts(&self) -> u64 {
        self.compact_conflicts
    }

    /// The current *resident* delivered sequence `d_i` — the tail beyond
    /// the [`EtobOmega::folded`] offset (the whole sequence while nothing
    /// is folded).
    pub fn delivered(&self) -> &[AppMessage] {
        &self.delivered
    }

    /// The current promotion sequence `promote_i`.
    pub fn promotion_sequence(&self) -> &[AppMessage] {
        &self.promote
    }

    /// The causality graph `CG_i`.
    pub fn causal_graph(&self) -> &CausalGraph {
        &self.graph
    }

    /// Admits one message into the causality graph, keeping the incremental
    /// broadcast (`unsent`) and promotion-candidate (`unpromoted`) sets in
    /// step. Every graph insertion must go through here — a node the
    /// candidate set misses would never be promoted. Returns `true` if the
    /// graph grew.
    fn admit(&mut self, msg: AppMessage) -> bool {
        let id = msg.id;
        if self.graph.update(msg) {
            self.unsent.push(id);
            self.unpromoted.insert(id);
            if let Some(t) = self.telemetry.as_deref_mut() {
                t.admitted(id.origin.index() as u32, id.seq);
            }
            true
        } else {
            false
        }
    }

    /// Drops a malformed peer message: bumps the counter and records the
    /// rejection in the flight ring.
    fn note_malformed(&mut self) {
        self.malformed += 1;
        if let Some(t) = self.telemetry.as_deref_mut() {
            t.malformed();
        }
    }

    /// Pushes the current logical tick into the attached recorder, if any.
    /// Called at every handler entry so logical-time recorders timestamp
    /// with the handler's simulation tick.
    fn telemetry_tick(&mut self, now: u64) {
        if let Some(t) = self.telemetry.as_deref_mut() {
            t.set_tick(now);
        }
    }

    /// Records every delivered entry beyond the recorder's watermark. The
    /// delivery paths mutate `delivered` wholesale (suffix adoption,
    /// verified-prefix reconstruction), so rather than instrumenting each
    /// push this scans the new suffix once per mutation — O(new entries).
    fn record_delivered_tail(&mut self) {
        let Some(t) = self.telemetry.as_deref_mut() else {
            return;
        };
        let folded = self.folded as u64;
        let total = folded + self.delivered.len() as u64;
        let start = t.delivered_watermark().saturating_sub(folded) as usize;
        for m in self.delivered.iter().skip(start) {
            t.delivered(m.id.origin.index() as u32, m.id.seq);
        }
        t.set_delivered_watermark(total);
    }

    /// `UpdatePromote()`: extends the promotion sequence with every message of
    /// the causality graph not yet present, in an order that respects the
    /// causal edges (and keeps the existing sequence as a prefix). Messages
    /// whose causal predecessors are not yet known are held back until the
    /// predecessors arrive. Returns `true` if the sequence grew.
    fn update_promote(&mut self) -> bool {
        let before = self.promote.len();
        // The candidate list is a reusable scratch buffer: the fixpoint
        // runs on every update delivery, so collecting a fresh `Vec` per
        // pass was measurable allocator churn on the E10 hot path.
        let mut scratch = std::mem::take(&mut self.promote_scratch);
        loop {
            let mut appended = false;
            // Deterministic scan order: by message identifier. Only the
            // incrementally maintained pending set is scanned, so a pass
            // costs O(pending), independent of how much promoted history
            // the graph retains.
            scratch.clear();
            scratch.extend(self.unpromoted.iter().copied());
            for &id in &scratch {
                let deps_satisfied = self
                    .graph
                    .predecessors(id)
                    .all(|dep| self.promoted_ids.contains(&dep) || self.graph.is_compacted(dep));
                if deps_satisfied {
                    let Some(msg) = self.graph.get(id).cloned() else {
                        self.unpromoted.remove(&id);
                        continue;
                    };
                    let tail = self.promote_hashes.last().copied().unwrap_or(FNV_OFFSET);
                    self.promote_hashes.push(hash_step(tail, id));
                    self.promote.push(msg);
                    self.promoted_ids.insert(id);
                    self.unpromoted.remove(&id);
                    if let Some(t) = self.telemetry.as_deref_mut() {
                        t.promoted(id.origin.index() as u32, id.seq);
                    }
                    appended = true;
                }
            }
            if !appended {
                break;
            }
        }
        self.promote_scratch = scratch;
        self.promote.len() > before
    }

    /// Records evidence that `from` knows every identifier in `digest`
    /// (it sent us a delta frontier, a beacon or a sync request).
    fn note_peer_knows(&mut self, from: ProcessId, digest: &VersionVector) {
        if from != self.me {
            self.peer_acked.entry(from).or_default().merge(digest);
        }
    }

    /// Broadcasts the current graph state: the literal `update(CG_i)` in
    /// full-graph mode, or per-peer suffix deltas (everything neither
    /// broadcast before nor acked by the peer) plus the digest in delta
    /// mode. The suffix is the incrementally maintained `unsent` list, so
    /// broadcast cost is O(new nodes), never a graph rescan. The self-copy
    /// carries no nodes — delivering it only triggers the paper's
    /// `UpdatePromote()` step, exactly like receiving one's own full update.
    fn broadcast_update(&mut self, ctx: &mut Context<'_, Self>) {
        self.updates_sent += 1;
        if !self.config.delta_sync {
            self.unsent.clear();
            ctx.broadcast(EtobMsg::Update(self.graph.clone()));
            return;
        }
        let frontier = self.graph.digest().clone();
        let fresh: Vec<AppMessage> = self
            .unsent
            .iter()
            .filter_map(|id| self.graph.get(*id).cloned())
            .collect();
        self.unsent.clear();
        for i in 0..ctx.n() {
            let to = ProcessId::new(i);
            let nodes = if to == self.me {
                Vec::new()
            } else {
                match self.peer_acked.get(&to) {
                    Some(acked) => fresh
                        .iter()
                        .filter(|m| !acked.contains(m.id))
                        .cloned()
                        .collect(),
                    None => fresh.clone(),
                }
            };
            ctx.send(
                to,
                EtobMsg::Delta {
                    nodes,
                    frontier: frontier.clone(),
                },
            );
        }
    }

    /// Broadcasts the promotion sequence: the full sequence in full-graph
    /// mode, or the suffix since the previous promote broadcast keyed by the
    /// prefix length and hash in delta mode.
    fn broadcast_promote(&mut self, ctx: &mut Context<'_, Self>) {
        if !self.config.delta_sync {
            ctx.broadcast(EtobMsg::Promote(self.promote.clone()));
            return;
        }
        // `base` is absolute; the resident `promote`/`promote_hashes` start
        // at `folded`, and `promote_hashes` always has `promote.len() + 1`
        // entries, so the clamped relative index is always in range; the
        // fallbacks keep this path panic-free even if that invariant is
        // ever broken.
        let base = self
            .last_promote_broadcast
            .clamp(self.folded, self.folded + self.promote.len());
        let rel = base - self.folded;
        ctx.broadcast(EtobMsg::PromoteDelta {
            base,
            prefix_hash: self.promote_hashes.get(rel).copied().unwrap_or(FNV_OFFSET),
            suffix: self.promote.get(rel..).unwrap_or_default().to_vec(),
        });
        self.last_promote_broadcast = self.folded + self.promote.len();
    }

    /// Adopts a full promotion sequence as the delivered sequence
    /// (full-promote reception) iff it differs from the current one,
    /// rebuilding the prefix hashes. With a folded prefix the sequence is
    /// adopted only if its first `folded` entries hash to our fold hash —
    /// a divergent history can never silently replace compacted state.
    fn adopt_full_promote(&mut self, sequence: Vec<AppMessage>, ctx: &mut Context<'_, Self>) {
        if self.folded == 0 {
            if self.delivered != sequence {
                self.delivered = sequence;
                self.delivered_hashes = prefix_hashes(&self.delivered);
                self.record_delivered_tail();
                ctx.output(self.delivered.clone());
            }
            return;
        }
        let Some(prefix) = sequence.get(..self.folded) else {
            // Shorter than our compacted history: a below-fold rewrite.
            self.compact_conflicts += 1;
            return;
        };
        let h = prefix.iter().fold(FNV_OFFSET, |h, m| hash_step(h, m.id));
        if h != self.delivered_hashes.first().copied().unwrap_or(FNV_OFFSET) {
            self.compact_conflicts += 1;
            return;
        }
        let tail = sequence.get(self.folded..).unwrap_or_default();
        if self.delivered.as_slice() != tail {
            self.delivered = tail.to_vec();
            self.delivered_hashes = prefix_hashes_from(h, &self.delivered);
            self.record_delivered_tail();
            ctx.output(self.delivered.clone());
        }
    }

    /// Applies a hash-verified promote suffix at *resident* offset `rel`:
    /// reconstructs exactly the sequence the leader holds and adopts it iff
    /// it differs from the current delivered sequence (the same condition as
    /// the full-promote path).
    fn apply_verified_suffix(
        &mut self,
        rel: usize,
        suffix: Vec<AppMessage>,
        ctx: &mut Context<'_, Self>,
    ) {
        let same = self.delivered.len() == rel + suffix.len()
            && self
                .delivered
                .get(rel..)
                .is_some_and(|tail| tail == suffix.as_slice());
        if same {
            return;
        }
        self.delivered.truncate(rel);
        self.delivered_hashes.truncate(rel.saturating_add(1));
        let mut h = self.delivered_hashes.last().copied().unwrap_or(FNV_OFFSET);
        for m in suffix {
            h = hash_step(h, m.id);
            self.delivered_hashes.push(h);
            self.delivered.push(m);
        }
        self.record_delivered_tail();
        ctx.output(self.delivered.clone());
    }

    /// Compaction evidence exchange, at promote cadence: every process sends
    /// each peer a pure digest beacon (advancing the peers' acked-frontier
    /// evidence even on quiet links) plus an [`EtobMsg::Ack`] advertising
    /// its verified delivered prefix. Neither counts as an `update`
    /// broadcast ([`EtobOmega::updates_sent`] measures payload pushes).
    fn broadcast_compaction_evidence(&mut self, ctx: &mut Context<'_, Self>) {
        let frontier = self.graph.digest().clone();
        let delivered = self.delivered_total();
        let hash = self.delivered_hash();
        for i in 0..ctx.n() {
            let to = ProcessId::new(i);
            if to == self.me {
                continue;
            }
            ctx.send(
                to,
                EtobMsg::Delta {
                    nodes: Vec::new(),
                    frontier: frontier.clone(),
                },
            );
            ctx.send(to, EtobMsg::Ack { delivered, hash });
        }
    }

    /// Stable-prefix compaction: folds the longest eligible multiple-of-
    /// [`EtobConfig::compact_after`] delivered prefix into the compacted
    /// frontier. Eligibility is the two-evidence rule — every peer has both
    /// (a) [`EtobMsg::Ack`]ed the prefix as delivered with a matching hash,
    /// so it holds (and, under the durable facade, has logged) the entries,
    /// and (b) covered every folded identifier with its graph digest, so
    /// the anti-entropy machinery will never be asked to re-serve a folded
    /// node. Both are needed: graph coverage alone says nothing about
    /// delivery (a peer can crash holding an undelivered node), and
    /// delivered acks alone would leave digest gaps that pull forever.
    fn maybe_compact(&mut self, n: usize) {
        let chunk = usize::try_from(self.config.compact_after).unwrap_or(0);
        if chunk == 0 {
            return;
        }
        // (a) unanimous delivered-level acks, bounded by our own sequence.
        let mut acked = self.folded + self.delivered.len();
        for i in 0..n {
            let p = ProcessId::new(i);
            if p == self.me {
                continue;
            }
            let peer = self.peer_delivered_ack.get(&p).copied().unwrap_or(0);
            acked = acked.min(usize::try_from(peer).unwrap_or(usize::MAX));
        }
        let target = (acked / chunk) * chunk;
        if target <= self.folded {
            return;
        }
        let fold = target - self.folded;
        let ids: Vec<MsgId> = self
            .delivered
            .get(..fold)
            .unwrap_or_default()
            .iter()
            .map(|m| m.id)
            .collect();
        if ids.len() < fold {
            return;
        }
        // (b) every peer's graph digest covers every identifier folded.
        for i in 0..n {
            let p = ProcessId::new(i);
            if p == self.me {
                continue;
            }
            let Some(acked_graph) = self.peer_acked.get(&p) else {
                return;
            };
            if !ids.iter().all(|id| acked_graph.contains(*id)) {
                return;
            }
        }
        // Fold: retire the nodes, drop the resident prefixes, rebase the
        // promote hashes on the fold hash. (`delivered_hashes` are absolute,
        // so draining the first `fold` entries leaves entry 0 as the new
        // fold hash.)
        self.graph.retire(ids.iter().copied());
        self.delivered.drain(..fold);
        self.delivered_hashes.drain(..fold);
        let folded_set: BTreeSet<MsgId> = ids.into_iter().collect();
        self.promote.retain(|m| !folded_set.contains(&m.id));
        self.promoted_ids.retain(|id| !folded_set.contains(id));
        self.unpromoted.retain(|id| !folded_set.contains(id));
        let fold_hash = self.delivered_hashes.first().copied().unwrap_or(FNV_OFFSET);
        self.promote_hashes = prefix_hashes_from(fold_hash, &self.promote);
        self.unsent.retain(|id| !folded_set.contains(id));
        self.folded = target;
        self.last_promote_broadcast = self.last_promote_broadcast.max(target);
        self.compactions += 1;
        self.compacted_total += fold as u64;
        if let Some(t) = self.telemetry.as_deref_mut() {
            t.folded(target as u64);
        }
    }

    /// Anti-entropy step: when enabled and due, retransmits graph state if
    /// the causality graph holds any message the delivered sequence does not
    /// — the retransmission that makes infinitely-often delivery (lossy
    /// links with `drop_prob < 1`) sufficient for eventual delivery. In
    /// full-graph mode this re-broadcasts `update(CG_i)`; in delta mode each
    /// peer is sent exactly its unacked nodes plus the digest (a pure
    /// beacon, ~constant size, once the peer has acked everything), and the
    /// digest lets the peer detect and pull anything still missing.
    fn maybe_resend(&mut self, ctx: &mut Context<'_, Self>) {
        if self.config.resend_period == 0 {
            return;
        }
        let now = ctx.now().as_u64();
        if now < self.next_resend {
            return;
        }
        self.next_resend = now + self.config.resend_period;
        ctx.set_timer(self.config.resend_period);
        let delivered: BTreeSet<MsgId> = self.delivered.iter().map(|m| m.id).collect();
        if !self.graph.nodes.keys().any(|id| !delivered.contains(id)) {
            return;
        }
        self.updates_sent += 1;
        if !self.config.delta_sync {
            ctx.broadcast(EtobMsg::Update(self.graph.clone()));
            return;
        }
        let frontier = self.graph.digest().clone();
        for i in 0..ctx.n() {
            let to = ProcessId::new(i);
            if to == self.me {
                continue;
            }
            // suspected loss: ignore what was already broadcast and resend
            // everything the peer has not itself acked. The graph scan in
            // missing_from is confined to this period-gated repair path,
            // which stops firing once the delivered sequence covers the
            // graph — the steady-state broadcast path never rescans.
            let empty = VersionVector::new();
            let acked = self.peer_acked.get(&to).unwrap_or(&empty);
            let nodes = self.graph.missing_from(acked);
            ctx.send(
                to,
                EtobMsg::Delta {
                    nodes,
                    frontier: frontier.clone(),
                },
            );
        }
    }
}

impl fmt::Debug for EtobOmega {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EtobOmega")
            .field("me", &self.me)
            .field("delivered", &self.delivered.len())
            .field("promote", &self.promote.len())
            .field("known", &self.graph.len())
            .field("folded", &self.folded)
            .finish()
    }
}

impl Algorithm for EtobOmega {
    type Msg = EtobMsg;
    type Input = EtobBroadcast;
    type Output = DeliveredSequence;
    type Fd = ProcessId;

    fn on_start(&mut self, ctx: &mut Context<'_, Self>) {
        let now = ctx.now().as_u64();
        self.telemetry_tick(now);
        self.next_promote = now + self.config.promote_period;
        ctx.set_timer(self.config.promote_period);
        if self.config.resend_period > 0 {
            self.next_resend = now + self.config.resend_period;
            ctx.set_timer(self.config.resend_period);
        }
    }

    fn on_input(&mut self, input: EtobBroadcast, ctx: &mut Context<'_, Self>) {
        // On broadcastETOB(m, C(m)): UpdateCG(m, C(m)); send update(CG_i) to all.
        let id = input.message.id;
        self.telemetry_tick(ctx.now().as_u64());
        if let Some(t) = self.telemetry.as_deref_mut() {
            t.submitted(id.origin.index() as u32, id.seq);
        }
        self.admit(input.message);
        if self.config.batching_enabled() {
            // Coalesce: the update goes out at the next flush deadline and
            // covers every message recorded in the graph by then.
            if self.next_flush.is_none() {
                self.next_flush = Some(ctx.now().as_u64() + self.config.batch);
                ctx.set_timer(self.config.batch);
            }
        } else {
            self.broadcast_update(ctx);
        }
    }

    fn on_message(&mut self, from: ProcessId, msg: EtobMsg, ctx: &mut Context<'_, Self>) {
        self.telemetry_tick(ctx.now().as_u64());
        match msg {
            EtobMsg::Update(graph) => {
                // On reception of update(CG_j): UnionCG(CG_j); UpdatePromote().
                self.note_peer_knows(from, graph.digest());
                for msg in graph.messages() {
                    if decode_node(msg).is_err() {
                        self.note_malformed();
                        continue;
                    }
                    if !self.graph.contains(msg.id) {
                        self.admit(msg.clone());
                    }
                }
                let grew = self.update_promote();
                if grew && self.config.eager_promote && *ctx.fd() == self.me {
                    self.broadcast_promote(ctx);
                }
            }
            EtobMsg::Delta { nodes, frontier } => {
                // Delta reception = UnionCG over the carried nodes, plus gap
                // detection: the frontier is an exact digest of the sender's
                // graph, so "my graph does not cover it" means the sender
                // knows a message I am missing — pull it.
                for node in nodes {
                    if decode_node(&node).is_err() {
                        self.note_malformed();
                        continue;
                    }
                    self.admit(node);
                }
                self.note_peer_knows(from, &frontier);
                let grew = self.update_promote();
                if grew && self.config.eager_promote && *ctx.fd() == self.me {
                    self.broadcast_promote(ctx);
                }
                if from != self.me && !self.graph.digest().covers(&frontier) {
                    self.sync_pulls += 1;
                    if let Some(t) = self.telemetry.as_deref_mut() {
                        t.sync_pull();
                    }
                    ctx.send(
                        from,
                        EtobMsg::SyncRequest {
                            digest: self.graph.digest().clone(),
                        },
                    );
                }
            }
            EtobMsg::SyncRequest { digest } => {
                // Repair: answer with exactly the nodes the requester's
                // digest proves it is missing.
                self.note_peer_knows(from, &digest);
                let missing = self.graph.missing_from(&digest);
                if !missing.is_empty() {
                    ctx.send(
                        from,
                        EtobMsg::Delta {
                            nodes: missing,
                            frontier: self.graph.digest().clone(),
                        },
                    );
                }
            }
            EtobMsg::Promote(sequence) => {
                // On reception of promote(promote_j): adopt it iff Ω_i = p_j.
                if decode_sequence(&sequence).is_err() {
                    self.note_malformed();
                    return;
                }
                if *ctx.fd() == from {
                    self.adopt_full_promote(sequence, ctx);
                }
            }
            EtobMsg::PromoteDelta {
                base,
                prefix_hash,
                suffix,
            } => {
                if *ctx.fd() != from {
                    return;
                }
                if decode_sequence(&suffix).is_err() {
                    self.note_malformed();
                    return;
                }
                // `base` is an *absolute* wire value and resident state
                // starts at `folded`: every access below goes through
                // `.get()` so a hostile value falls into the resync branch
                // instead of panicking.
                if base < self.folded {
                    // The claimed prefix ends below our fold point. If the
                    // suffix reaches the fold, roll the prefix hash across
                    // the overlap: a match proves the same lineage (adopt
                    // what lies beyond the fold), a mismatch is a divergent
                    // below-fold rewrite (rejected and counted). A suffix
                    // that falls short of the fold is entirely stale.
                    let skip = self.folded - base;
                    if let Some(overlap) = suffix.get(..skip) {
                        let h = overlap.iter().fold(prefix_hash, |h, m| hash_step(h, m.id));
                        if h == self.delivered_hashes.first().copied().unwrap_or(FNV_OFFSET) {
                            let tail = suffix.get(skip..).unwrap_or_default().to_vec();
                            self.apply_verified_suffix(0, tail, ctx);
                        } else {
                            self.compact_conflicts += 1;
                        }
                    }
                    return;
                }
                let rel = base - self.folded;
                // `delivered_hashes` has `delivered.len() + 1` entries, so
                // `get(rel)` succeeding also proves `rel <= delivered.len()`.
                let verified_prefix = self
                    .delivered_hashes
                    .get(rel)
                    .is_some_and(|h| *h == prefix_hash);
                if verified_prefix {
                    // My delivered prefix is the leader's unsent prefix:
                    // reconstruct exactly the full sequence the leader would
                    // have sent, and adopt it iff it differs (the same
                    // condition as the full-promote path).
                    self.apply_verified_suffix(rel, suffix, ctx);
                } else {
                    // Unverifiable prefix (followed a different leader,
                    // missed a promote, or the leader restarted): fall back
                    // to a full resend.
                    self.promote_pulls += 1;
                    ctx.send(from, EtobMsg::PromoteRequest);
                }
            }
            EtobMsg::PromoteRequest => {
                // Full-resend fallback: only a process that currently
                // considers itself the leader answers (mirroring the gate on
                // periodic promotes). With a folded prefix the full sequence
                // no longer exists resident, so the reply is a delta
                // anchored at the fold point: a requester sharing the folded
                // lineage verifies it like any delta, and one that does not
                // (e.g. restarted blank) needs durable recovery — folded
                // entries cannot be re-served by anti-entropy.
                if *ctx.fd() == self.me {
                    if self.folded == 0 {
                        ctx.send(from, EtobMsg::Promote(self.promote.clone()));
                    } else {
                        ctx.send(
                            from,
                            EtobMsg::PromoteDelta {
                                base: self.folded,
                                prefix_hash: self
                                    .promote_hashes
                                    .first()
                                    .copied()
                                    .unwrap_or(FNV_OFFSET),
                                suffix: self.promote.clone(),
                            },
                        );
                    }
                }
            }
            EtobMsg::Ack { delivered, hash } => {
                // Compaction evidence: record the peer's verified delivered
                // prefix, but only when the hash is comparable with our own
                // lineage and matches — an ack for a divergent prefix, or
                // one beyond what we can check, is ignored rather than
                // trusted.
                if from == self.me {
                    return;
                }
                let verified = usize::try_from(delivered)
                    .ok()
                    .and_then(|abs| abs.checked_sub(self.folded))
                    .and_then(|rel| self.delivered_hashes.get(rel))
                    .is_some_and(|h| *h == hash);
                if verified {
                    let slot = self.peer_delivered_ack.entry(from).or_insert(0);
                    *slot = (*slot).max(delivered);
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, Self>) {
        // The process juggles up to three timer chains (flush, promote,
        // resend) through the single `on_timer` entry point, so each fire is
        // matched against absolute deadlines: a timer that has not crossed
        // its deadline does nothing and does not re-arm. (An unconditional
        // re-arm would spawn one fresh perpetual chain per foreign fire —
        // quadratic timer proliferation once a second chain exists.)
        let now = ctx.now().as_u64();
        self.telemetry_tick(now);
        if self.config.batching_enabled() && self.next_flush.is_some_and(|at| now >= at) {
            self.next_flush = None;
            self.broadcast_update(ctx);
        }
        if now >= self.next_promote {
            // On local timeout: if Ω_i = p_i then send promote(promote_i) to all.
            if *ctx.fd() == self.me {
                self.broadcast_promote(ctx);
            }
            // Compaction rides the same cadence: exchange evidence, then
            // fold whatever prefix the evidence now covers. Delta mode only
            // — the paper-literal full-graph mode is the uncompacted
            // conformance reference.
            if self.config.compact_after > 0 && self.config.delta_sync {
                self.broadcast_compaction_evidence(ctx);
                self.maybe_compact(ctx.n());
            }
            self.next_promote = now + self.config.promote_period;
            ctx.set_timer(self.config.promote_period);
        }
        self.maybe_resend(ctx);
    }

    fn wire_size(msg: &EtobMsg) -> u64 {
        msg.wire_bytes()
    }
}

impl crate::types::Compactable for EtobOmega {
    fn stable_base(&self) -> u64 {
        self.folded as u64
    }

    fn stable_hash(&self) -> u64 {
        self.delivered_hashes.first().copied().unwrap_or(FNV_OFFSET)
    }

    fn stable_frontier(&self) -> VersionVector {
        self.graph.compacted().clone()
    }

    fn prime_recovery(
        &mut self,
        base: u64,
        hash: u64,
        frontier: VersionVector,
        tail: Vec<AppMessage>,
    ) -> bool {
        // Only a pristine automaton (fresh from `new`, before any input or
        // message) may be primed — recovery replaces state, never merges it.
        let pristine = self.folded == 0
            && self.delivered.is_empty()
            && self.promote.is_empty()
            && self.graph.digest().is_empty();
        let Ok(folded) = usize::try_from(base) else {
            return false;
        };
        if !pristine {
            return false;
        }
        self.folded = folded;
        self.delivered_hashes = prefix_hashes_from(hash, &tail);
        // The recovered graph starts from the folded frontier; the tail
        // entries re-enter as resident nodes so digests, gap detection and
        // repair serve them exactly as if the process had never crashed.
        self.graph = CausalGraph::recovered(frontier);
        for m in &tail {
            self.graph.update(m.clone());
        }
        self.promote = tail.clone();
        self.promote_hashes = self.delivered_hashes.clone();
        self.promoted_ids = tail.iter().map(|m| m.id).collect();
        // Every resident node is in the tail and thus already promoted.
        self.unpromoted.clear();
        self.delivered = tail;
        self.last_promote_broadcast = folded + self.promote.len();
        if let Some(t) = self.telemetry.as_deref_mut() {
            // The recovered prefix was delivered by the previous
            // incarnation: advance the watermark past it so rejoining does
            // not re-measure old deliveries, and stamp the rejoin itself.
            t.set_delivered_watermark(base + self.delivered.len() as u64);
            t.recovered();
        }
        true
    }
}

impl crate::types::Instrumented for EtobOmega {
    fn attach_recorder(&mut self, recorder: ec_telemetry::Recorder) {
        self.telemetry = Some(Box::new(recorder));
    }

    fn recorder(&self) -> Option<&ec_telemetry::Recorder> {
        self.telemetry.as_deref()
    }

    fn recorder_mut(&mut self) -> Option<&mut ec_telemetry::Recorder> {
        self.telemetry.as_deref_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::EtobChecker;
    use crate::workload::BroadcastWorkload;
    use ec_detectors::omega::{OmegaOracle, PreStabilization};
    use ec_sim::{
        FailurePattern, LinkFaults, LinkScope, NetworkModel, OutputHistory, PartitionSpec,
        ProcessSet, Time, WorldBuilder,
    };

    fn run_etob(
        n: usize,
        workload: &BroadcastWorkload,
        failures: FailurePattern,
        omega: OmegaOracle,
        network: NetworkModel,
        horizon: u64,
        config: EtobConfig,
    ) -> OutputHistory<DeliveredSequence> {
        let mut world = WorldBuilder::new(n)
            .network(network)
            .failures(failures)
            .seed(42)
            .build_with(|p| EtobOmega::new(p, config), omega);
        workload.submit_to(&mut world);
        world.run_until(horizon);
        world.trace().output_history()
    }

    #[test]
    fn stable_leader_from_start_gives_full_tob() {
        // Property P2: Ω stable from time 0 ⇒ strong TOB (tau = 0).
        let n = 4;
        let failures = FailurePattern::no_failures(n);
        let omega = OmegaOracle::stable_from_start(failures.clone());
        let workload = BroadcastWorkload::uniform(n, 12, 10, 7);
        let history = run_etob(
            n,
            &workload,
            failures.clone(),
            omega,
            NetworkModel::fixed_delay(2),
            5_000,
            EtobConfig::default(),
        );
        let checker = EtobChecker::from_delivered(
            &history,
            workload.records(),
            failures.correct(),
            Time::ZERO,
        );
        assert!(
            checker.check_all_with_causal().is_ok(),
            "{:?}",
            checker.check_all_with_causal()
        );
    }

    #[test]
    fn divergent_leaders_satisfy_etob_after_stabilization() {
        let n = 5;
        let failures = FailurePattern::no_failures(n);
        let tau_omega = Time::new(300);
        let omega = OmegaOracle::stabilizing_at(failures.clone(), tau_omega)
            .with_pre_stabilization(PreStabilization::SelfLeader);
        let workload = BroadcastWorkload::uniform(n, 15, 5, 11);
        let history = run_etob(
            n,
            &workload,
            failures.clone(),
            omega,
            NetworkModel::fixed_delay(3),
            8_000,
            EtobConfig::default(),
        );
        // tau = tau_Omega + Delta_t + Delta_c as in the paper's proof
        let tau = Time::new(300 + 5 + 3 + 1);
        let checker =
            EtobChecker::from_delivered(&history, workload.records(), failures.correct(), tau);
        assert!(checker.check_all().is_ok(), "{:?}", checker.check_all());
        // causal order holds from the beginning (property P3)
        assert!(checker.check_causal_order().is_empty());
    }

    #[test]
    fn causal_chains_are_respected_even_during_divergence() {
        let n = 4;
        let failures = FailurePattern::no_failures(n);
        let omega = OmegaOracle::stabilizing_at(failures.clone(), Time::new(400))
            .with_pre_stabilization(PreStabilization::RoundRobin { period: 25 });
        let workload = BroadcastWorkload::causal_chains(n, 3, 4, 5, 9);
        let history = run_etob(
            n,
            &workload,
            failures.clone(),
            omega,
            NetworkModel::uniform_delay(1, 4),
            8_000,
            EtobConfig::default(),
        );
        let checker = EtobChecker::from_delivered(
            &history,
            workload.records(),
            failures.correct(),
            Time::new(500),
        );
        assert!(
            checker.check_causal_order().is_empty(),
            "{:?}",
            checker.check_causal_order()
        );
        assert!(checker.check_all().is_ok(), "{:?}", checker.check_all());
    }

    #[test]
    fn liveness_without_correct_majority() {
        // Only 2 of 5 processes are correct: ETOB still delivers everything
        // broadcast by correct processes (no quorum is ever needed).
        let n = 5;
        let failures = FailurePattern::with_crashes(
            n,
            &[
                (ProcessId::new(2), Time::new(50)),
                (ProcessId::new(3), Time::new(50)),
                (ProcessId::new(4), Time::new(50)),
            ],
        );
        let omega = OmegaOracle::stable_from_start(failures.clone());
        // broadcasts happen after the crashes, from the surviving processes
        let mut workload = BroadcastWorkload::new();
        for k in 0..6 {
            workload.push(
                ProcessId::new(k % 2),
                100 + 10 * k as u64,
                format!("post-crash-{k}").into_bytes(),
                vec![],
            );
        }
        let history = run_etob(
            n,
            &workload,
            failures.clone(),
            omega,
            NetworkModel::fixed_delay(2),
            5_000,
            EtobConfig::default(),
        );
        let checker = EtobChecker::from_delivered(
            &history,
            workload.records(),
            failures.correct(),
            Time::ZERO,
        );
        assert!(checker.check_all().is_ok(), "{:?}", checker.check_all());
        // every broadcast message was actually delivered by the survivors
        let final_len = history
            .last(ProcessId::new(0))
            .map(|s| s.len())
            .unwrap_or(0);
        assert_eq!(final_len, 6);
    }

    #[test]
    fn deliveries_continue_inside_the_leaders_partition() {
        // The leader p0 is partitioned together with p1 away from the rest;
        // broadcasts originating inside the leader's side keep being delivered
        // there during the partition (eventual consistency is partition
        // tolerant), and everyone converges after the heal.
        let n = 5;
        let failures = FailurePattern::no_failures(n);
        let omega = OmegaOracle::stable_from_start(failures.clone());
        let minority: ProcessSet = [0, 1].into_iter().collect();
        let network = NetworkModel::fixed_delay(2).with_partition(
            Time::new(50),
            Time::new(600),
            PartitionSpec::isolate(minority, n),
        );
        let mut workload = BroadcastWorkload::new();
        for k in 0..5 {
            workload.push(
                ProcessId::new(k % 2), // inside the leader's side
                100 + 20 * k as u64,
                format!("partitioned-{k}").into_bytes(),
                vec![],
            );
        }
        let mut world = WorldBuilder::new(n)
            .network(network)
            .failures(failures.clone())
            .seed(9)
            .build_with(|p| EtobOmega::new(p, EtobConfig::default()), omega);
        workload.submit_to(&mut world);
        world.run_until(2_000);
        let history = world.trace().output_history();

        // during the partition (t = 550 < heal) p1 has already delivered
        // messages broadcast on its side
        let during = history
            .value_at(ProcessId::new(1), Time::new(550))
            .map(|s| s.len())
            .unwrap_or(0);
        assert!(
            during >= 1,
            "leader side must keep delivering during the partition"
        );

        // after the heal, everyone converges and full ETOB holds
        let checker = EtobChecker::from_delivered(
            &history,
            workload.records(),
            failures.correct(),
            Time::ZERO,
        );
        assert!(checker.check_all().is_ok(), "{:?}", checker.check_all());
    }

    #[test]
    fn eager_promotion_delivers_in_two_message_hops() {
        let n = 4;
        let delay = 10u64;
        let failures = FailurePattern::no_failures(n);
        let omega = OmegaOracle::stable_from_start(failures.clone());
        let mut workload = BroadcastWorkload::new();
        // broadcast from a non-leader process
        workload.push(ProcessId::new(2), 100, b"fast".to_vec(), vec![]);
        let history = run_etob(
            n,
            &workload,
            failures.clone(),
            omega,
            NetworkModel::fixed_delay(delay),
            2_000,
            EtobConfig::eager(),
        );
        let id = workload.ids()[0];
        // find the first time any non-broadcasting process delivered it
        let mut first_delivery = None;
        for p in (0..n).map(ProcessId::new) {
            if let Some(t) = history.first_time_where(p, |seq| seq.iter().any(|m| m.id == id)) {
                first_delivery = Some(first_delivery.map_or(t, |x: Time| x.min(t)));
            }
        }
        let latency = first_delivery
            .expect("delivered")
            .saturating_since(Time::new(100));
        // two communication steps of 10 ticks each, plus negligible local time
        assert!(latency >= 2 * delay, "latency {latency}");
        assert!(latency < 3 * delay, "latency {latency} should be < 3 hops");
    }

    #[test]
    fn batched_runs_satisfy_etob_with_fewer_update_broadcasts() {
        let n = 4;
        let failures = FailurePattern::no_failures(n);
        // spacing 1 ⇒ each origin submits every 4 ticks, well inside the
        // 10-tick flush window, so batching has something to coalesce
        let workload = BroadcastWorkload::uniform(n, 16, 10, 1);
        let run = |config: EtobConfig| {
            let omega = OmegaOracle::stable_from_start(failures.clone());
            let mut world = WorldBuilder::new(n)
                .network(NetworkModel::fixed_delay(2))
                .failures(failures.clone())
                .seed(42)
                .build_with(|p| EtobOmega::new(p, config), omega);
            workload.submit_to(&mut world);
            world.run_until(5_000);
            let updates: u64 = world
                .process_ids()
                .map(|p| world.algorithm(p).updates_sent())
                .sum();
            (world.trace().output_history(), updates)
        };
        let (unbatched, updates_unbatched) = run(EtobConfig::default());
        let (batched, updates_batched) = run(EtobConfig::batched(10));
        for history in [&unbatched, &batched] {
            let checker = EtobChecker::from_delivered(
                history,
                workload.records(),
                failures.correct(),
                Time::ZERO,
            );
            assert!(checker.check_all().is_ok(), "{:?}", checker.check_all());
        }
        // one update per op without batching; coalesced flushes with it
        assert_eq!(updates_unbatched, 16);
        assert!(
            updates_batched < updates_unbatched,
            "batching must coalesce update broadcasts ({updates_batched} vs {updates_unbatched})"
        );
        // both runs deliver the same set of messages everywhere
        let ids = |h: &OutputHistory<DeliveredSequence>| {
            let mut v: Vec<MsgId> = h
                .last(ProcessId::new(0))
                .map(|s| s.iter().map(|m| m.id).collect())
                .unwrap_or_default();
            v.sort();
            v
        };
        assert_eq!(ids(&unbatched), ids(&batched));
    }

    #[test]
    fn batched_single_origin_delivers_the_same_stable_sequence() {
        // All broadcasts originate at one process, so the promotion order is
        // forced (FIFO per origin): the batched and unbatched stable
        // sequences must be identical, not merely equivalent.
        let n = 3;
        let failures = FailurePattern::no_failures(n);
        let mut workload = BroadcastWorkload::new();
        for k in 0..8u64 {
            workload.push(
                ProcessId::new(1),
                20 + 4 * k,
                format!("op{k}").into_bytes(),
                vec![],
            );
        }
        let run = |config: EtobConfig| {
            run_etob(
                n,
                &workload,
                failures.clone(),
                OmegaOracle::stable_from_start(failures.clone()),
                NetworkModel::fixed_delay(2),
                4_000,
                config,
            )
        };
        let unbatched = run(EtobConfig::default());
        let batched = run(EtobConfig::batched(7));
        for p in (0..n).map(ProcessId::new) {
            let ids = |h: &OutputHistory<DeliveredSequence>| -> Vec<MsgId> {
                h.last(p)
                    .map(|s| s.iter().map(|m| m.id).collect())
                    .unwrap_or_default()
            };
            assert_eq!(ids(&unbatched), ids(&batched), "sequences differ at {p}");
            assert_eq!(ids(&unbatched).len(), 8);
        }
    }

    #[test]
    fn batching_flushes_at_the_deadline_not_per_operation() {
        // Two ops land inside one flush window; the update goes out once.
        let mut alg = EtobOmega::new(ProcessId::new(0), EtobConfig::batched(5));
        let mut actions = ec_sim::Actions::<EtobOmega>::new();
        {
            let mut ctx = Context::new(
                ProcessId::new(0),
                Time::new(10),
                3,
                ProcessId::new(0),
                &mut actions,
            );
            alg.on_input(
                EtobBroadcast::new(ProcessId::new(0), 1, b"a".to_vec()),
                &mut ctx,
            );
            alg.on_input(
                EtobBroadcast::new(ProcessId::new(0), 2, b"b".to_vec()),
                &mut ctx,
            );
        }
        assert!(actions.sends.is_empty(), "ops must be buffered, not sent");
        // only the first op arms a flush timer
        assert_eq!(actions.timers, vec![5]);

        // before the deadline the timer does nothing
        let mut early = ec_sim::Actions::<EtobOmega>::new();
        {
            let mut ctx = Context::new(
                ProcessId::new(0),
                Time::new(12),
                3,
                ProcessId::new(1),
                &mut early,
            );
            alg.on_timer(&mut ctx);
        }
        assert!(early.sends.is_empty());

        // at the deadline one update carrying both messages goes to all
        let mut flush = ec_sim::Actions::<EtobOmega>::new();
        {
            let mut ctx = Context::new(
                ProcessId::new(0),
                Time::new(15),
                3,
                ProcessId::new(1),
                &mut flush,
            );
            alg.on_timer(&mut ctx);
        }
        assert_eq!(flush.sends.len(), 3, "one broadcast to the 3 processes");
        for (to, m) in &flush.sends {
            let EtobMsg::Delta { nodes, frontier } = m else {
                panic!("expected a delta, got {m:?}");
            };
            assert_eq!(frontier.len(), 2, "digest covers both buffered ops");
            if *to == ProcessId::new(0) {
                assert!(nodes.is_empty(), "the self-copy is a pure trigger");
            } else {
                assert_eq!(nodes.len(), 2, "one delta carrying both messages");
            }
        }
        assert_eq!(alg.updates_sent(), 1);
    }

    #[test]
    fn full_graph_mode_still_sends_the_papers_wire_format() {
        let mut alg = EtobOmega::new(ProcessId::new(0), EtobConfig::full_graph());
        let mut actions = ec_sim::Actions::<EtobOmega>::new();
        {
            let mut ctx = Context::new(
                ProcessId::new(0),
                Time::new(10),
                3,
                ProcessId::new(0),
                &mut actions,
            );
            alg.on_input(
                EtobBroadcast::new(ProcessId::new(0), 1, b"a".to_vec()),
                &mut ctx,
            );
        }
        assert_eq!(actions.sends.len(), 3);
        assert!(actions
            .sends
            .iter()
            .all(|(_, m)| matches!(m, EtobMsg::Update(g) if g.len() == 1)));
    }

    #[test]
    fn a_detected_update_gap_triggers_a_digest_pull_and_the_repair_heals_it() {
        // p1 broadcast m1 then m2; p0 receives only the m2 delta (the m1
        // delta was "lost"), detects the gap from the frontier, pulls, and
        // the repair delta carries exactly m1.
        let m1 = AppMessage::new(MsgId::new(ProcessId::new(1), 1), b"one".to_vec());
        let m2 = AppMessage::new(MsgId::new(ProcessId::new(1), 2), b"two".to_vec());
        let mut sender = EtobOmega::new(ProcessId::new(1), EtobConfig::default());
        sender.graph.update(m1.clone());
        sender.graph.update(m2.clone());
        let frontier = sender.graph.digest().clone();

        let mut receiver = EtobOmega::new(ProcessId::new(0), EtobConfig::default());
        let mut actions = ec_sim::Actions::<EtobOmega>::new();
        {
            let mut ctx = Context::new(
                ProcessId::new(0),
                Time::new(5),
                3,
                ProcessId::new(1),
                &mut actions,
            );
            receiver.on_message(
                ProcessId::new(1),
                EtobMsg::Delta {
                    nodes: vec![m2.clone()],
                    frontier: frontier.clone(),
                },
                &mut ctx,
            );
        }
        assert_eq!(receiver.sync_pulls(), 1);
        let (to, pull) = &actions.sends[0];
        assert_eq!(*to, ProcessId::new(1));
        let EtobMsg::SyncRequest { digest } = pull else {
            panic!("expected a digest pull, got {pull:?}");
        };
        assert!(digest.contains(m2.id) && !digest.contains(m1.id));

        // the sender answers with exactly the missing node …
        let mut reply = ec_sim::Actions::<EtobOmega>::new();
        {
            let mut ctx = Context::new(
                ProcessId::new(1),
                Time::new(7),
                3,
                ProcessId::new(1),
                &mut reply,
            );
            sender.on_message(ProcessId::new(0), pull.clone(), &mut ctx);
        }
        assert_eq!(reply.sends.len(), 1);
        let (_, repair) = &reply.sends[0];
        let EtobMsg::Delta { nodes, .. } = repair else {
            panic!("expected a repair delta, got {repair:?}");
        };
        assert_eq!(nodes.len(), 1);
        assert_eq!(nodes[0].id, m1.id);
        // … and the sender now knows what p0 has acked
        assert!(sender.peer_acked[&ProcessId::new(0)].contains(m2.id));

        // … which closes the receiver's gap (no further pull)
        let mut heal = ec_sim::Actions::<EtobOmega>::new();
        {
            let mut ctx = Context::new(
                ProcessId::new(0),
                Time::new(9),
                3,
                ProcessId::new(1),
                &mut heal,
            );
            receiver.on_message(ProcessId::new(1), repair.clone(), &mut ctx);
        }
        assert!(heal.sends.is_empty());
        assert!(receiver.causal_graph().contains(m1.id));
        assert_eq!(receiver.sync_pulls(), 1);
    }

    #[test]
    fn unverifiable_promote_prefixes_fall_back_to_a_full_resend() {
        // The leader appends and broadcasts a suffix with base 2, but the
        // receiver has an empty delivered sequence: the prefix cannot be
        // verified, so it pulls, and the leader answers with the full
        // promote — which the receiver adopts wholesale.
        let mk = |seq| AppMessage::new(MsgId::new(ProcessId::new(1), seq), b"x".to_vec());
        let mut leader = EtobOmega::new(ProcessId::new(1), EtobConfig::default());
        for seq in 1..=3u64 {
            leader.admit(mk(seq));
        }
        leader.update_promote();
        leader.last_promote_broadcast = 2; // as if promote[..2] was broadcast

        let mut suffix_actions = ec_sim::Actions::<EtobOmega>::new();
        {
            let mut ctx = Context::new(
                ProcessId::new(1),
                Time::new(20),
                2,
                ProcessId::new(1),
                &mut suffix_actions,
            );
            leader.broadcast_promote(&mut ctx);
        }
        let (_, promote_delta) = &suffix_actions.sends[0];
        assert!(
            matches!(promote_delta, EtobMsg::PromoteDelta { base: 2, suffix, .. } if suffix.len() == 1)
        );

        let mut receiver = EtobOmega::new(ProcessId::new(0), EtobConfig::default());
        let mut pull = ec_sim::Actions::<EtobOmega>::new();
        {
            let mut ctx = Context::new(
                ProcessId::new(0),
                Time::new(22),
                2,
                ProcessId::new(1),
                &mut pull,
            );
            receiver.on_message(ProcessId::new(1), promote_delta.clone(), &mut ctx);
        }
        assert!(receiver.delivered().is_empty(), "nothing adoptable yet");
        assert_eq!(receiver.promote_pulls(), 1);
        assert_eq!(
            pull.sends,
            vec![(ProcessId::new(1), EtobMsg::PromoteRequest)]
        );

        let mut full = ec_sim::Actions::<EtobOmega>::new();
        {
            let mut ctx = Context::new(
                ProcessId::new(1),
                Time::new(24),
                2,
                ProcessId::new(1),
                &mut full,
            );
            leader.on_message(ProcessId::new(0), EtobMsg::PromoteRequest, &mut ctx);
        }
        let (_, full_promote) = &full.sends[0];
        assert!(matches!(full_promote, EtobMsg::Promote(seq) if seq.len() == 3));

        let mut adopt = ec_sim::Actions::<EtobOmega>::new();
        {
            let mut ctx = Context::new(
                ProcessId::new(0),
                Time::new(26),
                2,
                ProcessId::new(1),
                &mut adopt,
            );
            receiver.on_message(ProcessId::new(1), full_promote.clone(), &mut ctx);
        }
        assert_eq!(receiver.delivered().len(), 3);

        // a follow-up suffix from the same lineage is now verifiable in O(1)
        for seq in 4..=5u64 {
            leader.admit(mk(seq));
        }
        leader.update_promote();
        let mut next = ec_sim::Actions::<EtobOmega>::new();
        {
            let mut ctx = Context::new(
                ProcessId::new(1),
                Time::new(28),
                2,
                ProcessId::new(1),
                &mut next,
            );
            leader.broadcast_promote(&mut ctx);
        }
        let (_, next_delta) = &next.sends[0];
        assert!(matches!(next_delta, EtobMsg::PromoteDelta { base: 3, .. }));
        let mut extend = ec_sim::Actions::<EtobOmega>::new();
        {
            let mut ctx = Context::new(
                ProcessId::new(0),
                Time::new(30),
                2,
                ProcessId::new(1),
                &mut extend,
            );
            receiver.on_message(ProcessId::new(1), next_delta.clone(), &mut ctx);
        }
        assert_eq!(receiver.delivered().len(), 5);
        assert_eq!(receiver.promote_pulls(), 1, "no further fallback needed");
        let ids: Vec<MsgId> = receiver.delivered().iter().map(|m| m.id).collect();
        let expected: Vec<MsgId> = leader.promotion_sequence().iter().map(|m| m.id).collect();
        assert_eq!(ids, expected);
    }

    #[test]
    fn wire_sizes_scale_with_content_not_history() {
        let m = AppMessage::new(MsgId::new(ProcessId::new(0), 1), vec![0u8; 100]);
        assert_eq!(m.wire_bytes(), 16 + 8 + 100 + 8);
        let mut graph = CausalGraph::new();
        graph.update(m.clone());
        let beacon = EtobMsg::Delta {
            nodes: Vec::new(),
            frontier: graph.digest().clone(),
        };
        let full = EtobMsg::Update(graph.clone());
        assert!(beacon.wire_bytes() < full.wire_bytes());
        assert_eq!(EtobMsg::PromoteRequest.wire_bytes(), 1);
        assert_eq!(
            EtobMsg::Promote(vec![m.clone()]).wire_bytes(),
            1 + 8 + m.wire_bytes()
        );
        assert_eq!(EtobOmega::wire_size(&full), full.wire_bytes());
    }

    #[test]
    fn resend_restores_eventual_delivery_over_lossy_links() {
        // Half the remote transmissions in the first 400 ticks are dropped
        // and a fifth are duplicated; with anti-entropy retransmission every
        // message still reaches every process, in one agreed order.
        let n = 4;
        let failures = FailurePattern::no_failures(n);
        let omega = OmegaOracle::stable_from_start(failures.clone());
        let network = NetworkModel::fixed_delay(2).with_faults(
            Time::ZERO,
            Time::new(400),
            LinkScope::All,
            LinkFaults::new(0.5, 0.2, 3),
        );
        let workload = BroadcastWorkload::uniform(n, 10, 10, 8);
        let history = run_etob(
            n,
            &workload,
            failures.clone(),
            omega,
            network,
            6_000,
            EtobConfig::default().with_resend(15),
        );
        let reference: Vec<MsgId> = history
            .last(ProcessId::new(0))
            .map(|s| s.iter().map(|m| m.id).collect())
            .expect("p0 delivered");
        assert_eq!(reference.len(), 10, "every broadcast must survive loss");
        for p in (0..n).map(ProcessId::new) {
            let ids: Vec<MsgId> = history
                .last(p)
                .map(|s| s.iter().map(|m| m.id).collect())
                .unwrap_or_default();
            assert_eq!(ids, reference, "sequences diverged at {p}");
        }
        // duplication must not deliver any message twice
        let mut deduped = reference.clone();
        deduped.sort();
        deduped.dedup();
        assert_eq!(deduped.len(), reference.len());
    }

    #[test]
    fn causal_graph_operations() {
        let a = AppMessage::new(MsgId::new(ProcessId::new(0), 1), b"a".to_vec());
        let b = AppMessage::with_deps(MsgId::new(ProcessId::new(1), 1), b"b".to_vec(), vec![a.id]);
        let mut g = CausalGraph::new();
        assert!(g.is_empty());
        g.update(a.clone());
        g.update(b.clone());
        assert_eq!(g.len(), 2);
        assert!(g.contains(a.id));
        assert_eq!(g.predecessors(b.id).collect::<Vec<_>>(), vec![a.id]);
        assert_eq!(g.edges().count(), 1);

        let mut h = CausalGraph::new();
        let c = AppMessage::new(MsgId::new(ProcessId::new(2), 1), b"c".to_vec());
        h.update(c.clone());
        g.union(&h);
        assert_eq!(g.len(), 3);
        assert_eq!(g.messages().count(), 3);
    }

    #[test]
    fn update_promote_holds_back_messages_with_unknown_dependencies() {
        let a = AppMessage::new(MsgId::new(ProcessId::new(0), 1), b"a".to_vec());
        let b = AppMessage::with_deps(MsgId::new(ProcessId::new(1), 1), b"b".to_vec(), vec![a.id]);
        let mut alg = EtobOmega::new(ProcessId::new(0), EtobConfig::default());
        // b arrives without a: held back
        alg.admit(b.clone());
        alg.update_promote();
        assert!(alg.promotion_sequence().is_empty());
        // once a arrives, both are appended in causal order
        alg.admit(a.clone());
        alg.update_promote();
        let ids: Vec<MsgId> = alg.promotion_sequence().iter().map(|m| m.id).collect();
        assert_eq!(ids, vec![a.id, b.id]);
        assert!(format!("{alg:?}").contains("EtobOmega"));
    }

    #[test]
    fn compaction_folds_globally_acked_prefixes_without_changing_delivery() {
        // Same workload, compaction off (the reference) vs on: identical
        // delivered history — checked via the rolling hash and the resident
        // tail — but the compacted run retires resident state.
        let n = 3;
        let failures = FailurePattern::no_failures(n);
        let workload = BroadcastWorkload::uniform(n, 36, 4, 13);
        let reference: Vec<MsgId> = {
            let omega = OmegaOracle::stable_from_start(failures.clone());
            let mut world = WorldBuilder::new(n)
                .network(NetworkModel::fixed_delay(2))
                .failures(failures.clone())
                .seed(42)
                .build_with(
                    |p| EtobOmega::new(p, EtobConfig::default().with_resend(15)),
                    omega,
                );
            workload.submit_to(&mut world);
            world.run_until(4_000);
            world
                .algorithm(ProcessId::new(0))
                .delivered()
                .iter()
                .map(|m| m.id)
                .collect()
        };
        assert_eq!(reference.len(), 36);
        let expected_hash = reference.iter().fold(FNV_OFFSET, |h, id| hash_step(h, *id));

        let omega = OmegaOracle::stable_from_start(failures.clone());
        let config = EtobConfig::default().with_resend(15).with_compaction(8);
        let mut world = WorldBuilder::new(n)
            .network(NetworkModel::fixed_delay(2))
            .failures(failures.clone())
            .seed(42)
            .build_with(|p| EtobOmega::new(p, config), omega);
        workload.submit_to(&mut world);
        world.run_until(4_000);
        for p in world.process_ids() {
            let alg = world.algorithm(p);
            assert_eq!(alg.delivered_total(), 36, "{p} lost history");
            assert_eq!(alg.delivered_hash(), expected_hash, "{p} diverged");
            assert!(alg.folded() >= 8, "{p} never folded");
            assert_eq!(alg.folded() % 8, 0, "{p} folded off-chunk");
            assert_eq!(alg.compacted_total(), alg.folded());
            assert_eq!(alg.compact_conflicts(), 0, "{p} hit a conflict");
            assert_eq!(alg.malformed(), 0);
            let tail: Vec<MsgId> = alg.delivered().iter().map(|m| m.id).collect();
            assert_eq!(tail.as_slice(), &reference[alg.folded() as usize..]);
            assert!(
                alg.causal_graph().len() < 36,
                "{p} graph still holds the whole history"
            );
        }
    }

    #[test]
    fn recovery_priming_restores_the_fold_and_rejects_divergent_prefixes() {
        use crate::types::Compactable;
        let mk = |seq| AppMessage::new(MsgId::new(ProcessId::new(1), seq), b"x".to_vec());
        let history: Vec<AppMessage> = (1..=3u64).map(mk).collect();
        let hashes = prefix_hashes(&history);
        let mut frontier = VersionVector::new();
        for m in &history[..2] {
            frontier.insert(m.id);
        }

        // Prime a fresh automaton: 2 folded entries plus a 1-entry tail.
        let mut alg = EtobOmega::new(ProcessId::new(0), EtobConfig::default());
        assert!(alg.prime_recovery(2, hashes[2], frontier.clone(), vec![history[2].clone()]));
        assert_eq!(alg.folded(), 2);
        assert_eq!(alg.delivered_total(), 3);
        assert_eq!(alg.delivered_hash(), hashes[3]);
        assert_eq!(alg.stable_base(), 2);
        assert_eq!(alg.stable_hash(), hashes[2]);
        assert!(alg.stable_frontier().covers(&frontier));
        assert!(alg.causal_graph().is_compacted(history[0].id));
        assert!(alg.causal_graph().contains(history[2].id));
        // Priming twice is refused — the automaton is no longer pristine.
        assert!(!alg.prime_recovery(2, hashes[2], frontier.clone(), vec![]));

        // A full promote that disagrees with the folded prefix is rejected…
        let divergent: Vec<AppMessage> = (10..=13u64).map(mk).collect();
        let mut actions = ec_sim::Actions::<EtobOmega>::new();
        {
            let mut ctx = Context::new(
                ProcessId::new(0),
                Time::new(2),
                2,
                ProcessId::new(1),
                &mut actions,
            );
            alg.on_message(ProcessId::new(1), EtobMsg::Promote(divergent), &mut ctx);
            // …as is a promote delta whose below-fold prefix hash diverges…
            alg.on_message(
                ProcessId::new(1),
                EtobMsg::PromoteDelta {
                    base: 1,
                    prefix_hash: hashes[1].wrapping_add(1),
                    suffix: history[1..].to_vec(),
                },
                &mut ctx,
            );
            assert_eq!(alg.compact_conflicts(), 2);
            assert_eq!(alg.delivered_total(), 3, "compacted history survived");

            // …while one overlapping the fold with the *same* lineage
            // verifies across the boundary and extends the tail.
            let mut extended = history[1..].to_vec();
            extended.push(mk(4));
            alg.on_message(
                ProcessId::new(1),
                EtobMsg::PromoteDelta {
                    base: 1,
                    prefix_hash: hashes[1],
                    suffix: extended,
                },
                &mut ctx,
            );
        }
        assert_eq!(alg.compact_conflicts(), 2);
        assert_eq!(alg.delivered_total(), 4);
        assert_eq!(alg.folded(), 2);
        assert_eq!(alg.delivered_hash(), hash_step(hashes[3], mk(4).id));
    }

    #[test]
    fn acks_are_hash_checked_before_counting_as_compaction_evidence() {
        let mk = |seq| AppMessage::new(MsgId::new(ProcessId::new(1), seq), b"x".to_vec());
        let history: Vec<AppMessage> = (1..=4u64).map(mk).collect();
        let hashes = prefix_hashes(&history);
        let mut alg = EtobOmega::new(ProcessId::new(0), EtobConfig::default().with_compaction(2));
        let mut actions = ec_sim::Actions::<EtobOmega>::new();
        {
            let mut ctx = Context::new(
                ProcessId::new(0),
                Time::new(2),
                2,
                ProcessId::new(1),
                &mut actions,
            );
            alg.on_message(
                ProcessId::new(1),
                EtobMsg::Promote(history.clone()),
                &mut ctx,
            );
            assert_eq!(alg.delivered_total(), 4);
            // Divergent hash: ignored.
            alg.on_message(
                ProcessId::new(1),
                EtobMsg::Ack {
                    delivered: 4,
                    hash: hashes[4] ^ 1,
                },
                &mut ctx,
            );
            assert!(alg.peer_delivered_ack.is_empty());
            // Beyond what we can check: ignored.
            alg.on_message(
                ProcessId::new(1),
                EtobMsg::Ack {
                    delivered: 9,
                    hash: 0,
                },
                &mut ctx,
            );
            assert!(alg.peer_delivered_ack.is_empty());
            // Matching: recorded — and never regresses.
            alg.on_message(
                ProcessId::new(1),
                EtobMsg::Ack {
                    delivered: 4,
                    hash: hashes[4],
                },
                &mut ctx,
            );
            assert_eq!(alg.peer_delivered_ack[&ProcessId::new(1)], 4);
            alg.on_message(
                ProcessId::new(1),
                EtobMsg::Ack {
                    delivered: 2,
                    hash: hashes[2],
                },
                &mut ctx,
            );
            assert_eq!(alg.peer_delivered_ack[&ProcessId::new(1)], 4);

            // Delivered-level acks alone do not fold: the peer's graph
            // digest has not covered the nodes (two-evidence rule, (b)).
            alg.maybe_compact(2);
            assert_eq!(alg.folded(), 0);

            // Graph-level evidence arrives with the peer's beacon frontier;
            // now the whole acked prefix folds.
            let mut frontier = VersionVector::new();
            for m in &history {
                frontier.insert(m.id);
            }
            alg.on_message(
                ProcessId::new(1),
                EtobMsg::Delta {
                    nodes: Vec::new(),
                    frontier,
                },
                &mut ctx,
            );
            alg.maybe_compact(2);
        }
        assert_eq!(alg.folded(), 4);
        assert_eq!(alg.compactions(), 1);
        assert_eq!(alg.compacted_total(), 4);
        assert!(alg.delivered().is_empty(), "the whole sequence folded");
        assert_eq!(alg.delivered_total(), 4);
        assert_eq!(alg.delivered_hash(), hashes[4]);
        for m in &history {
            assert!(alg.causal_graph().is_compacted(m.id));
            assert!(alg.causal_graph().digest().contains(m.id));
        }
    }
}

//! Internal helper for black-box wrapper algorithms.
//!
//! The paper's transformations use the wrapped algorithm as a black box: they
//! feed it inputs, relay its messages and consume its outputs. This helper
//! runs one handler of an inner algorithm in a scratch action buffer so the
//! wrapper can translate the collected actions into its own.
//!
//! Timer policy: wrappers never relay the inner algorithm's `set_timer`
//! requests. Exactly one component of a process — the outermost wrapper (or
//! the algorithm itself when it runs unwrapped) — arms a periodic timer in
//! `on_start` and re-arms it once per `on_timer`, forwarding every fire down
//! the stack. Relaying inner timers *and* re-arming an own timer would
//! schedule two future timers per fire and make the event queue grow
//! exponentially.

use ec_sim::{Actions, Algorithm, Context, ProcessId, Time};

/// Runs one handler of `inner` with a fresh action buffer and returns the
/// actions it produced.
pub(crate) fn run_inner<A, F>(
    inner: &mut A,
    me: ProcessId,
    now: Time,
    n: usize,
    fd: A::Fd,
    handler: F,
) -> Actions<A>
where
    A: Algorithm,
    F: FnOnce(&mut A, &mut Context<'_, A>),
{
    let mut actions = Actions::<A>::new();
    {
        let mut ctx = Context::new(me, now, n, fd, &mut actions);
        handler(inner, &mut ctx);
    }
    actions
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Doubler;
    impl Algorithm for Doubler {
        type Msg = u32;
        type Input = u32;
        type Output = u32;
        type Fd = ();
        fn on_input(&mut self, input: u32, ctx: &mut Context<'_, Self>) {
            ctx.output(input * 2);
            ctx.send(ProcessId::new(0), input);
            ctx.set_timer(3);
        }
    }

    #[test]
    fn run_inner_collects_all_actions() {
        let mut inner = Doubler;
        let actions = run_inner(
            &mut inner,
            ProcessId::new(1),
            Time::new(5),
            3,
            (),
            |a, ctx| a.on_input(21, ctx),
        );
        assert_eq!(actions.outputs, vec![42]);
        assert_eq!(actions.sends, vec![(ProcessId::new(0), 21)]);
        assert_eq!(actions.timers, vec![3]);
    }
}

//! # `ec-core` — eventual consistency abstractions (PODC 2015 reproduction)
//!
//! This crate contains the paper's contribution as executable Rust:
//!
//! * [`types`] — the EC / ETOB / EIC interfaces and application message
//!   types (payloads are shared `Arc<[u8]>` buffers — fan-out never deep-
//!   copies bytes).
//! * [`version`] — exact per-origin range-set digests ([`VersionVector`]),
//!   the gap-detection backbone of the delta-state wire format.
//! * [`spec`] — executable property checkers for the TOB/ETOB properties of
//!   Section 3 and the EC/EIC properties of Section 3 / Appendix A.
//! * [`ec_omega`] — **Algorithm 4**: eventual consensus from Ω, in any
//!   environment (Lemma 2).
//! * [`etob_omega`] — **Algorithm 5**: eventual total order broadcast
//!   directly from Ω, with two-communication-step delivery under a stable
//!   leader, full TOB when Ω is stable from the start, and causal order
//!   throughout. Runs a delta-state wire format by default (suffix updates,
//!   digest-triggered reconciliation, hash-keyed promote suffixes) with the
//!   paper-literal full-graph mode kept as the reference spec.
//! * [`transforms`] — the black-box equivalence transformations:
//!   **Algorithm 1** (EC → ETOB), **Algorithm 2** (ETOB → EC) proving
//!   Theorem 1, and **Algorithms 6 & 7** (EC ↔ EIC) proving Theorem 3.
//! * [`tob_consensus`] — the strongly consistent baseline: a quorum-gated
//!   leader sequencer (consensus-based TOB) that needs Ω **and** Σ, used by
//!   the experiments to exhibit the exact gap the paper identifies.
//! * [`harness`] / [`workload`] — drivers and workload generators shared by
//!   tests, examples and the benchmark harness.
//!
//! See `DESIGN.md` and `EXPERIMENTS.md` at the repository root for the full
//! map from paper claims to modules and experiments.

#![warn(missing_docs)]
// Unit tests may unwrap freely; the lint guards protocol paths only.
#![cfg_attr(test, allow(clippy::unwrap_used))]
#![warn(missing_debug_implementations)]

pub mod ec_omega;
pub mod etob_omega;
pub mod harness;
pub mod inline;
pub mod spec;
pub mod tob_consensus;
pub mod transforms;
pub mod types;
pub mod version;
pub mod wire;
pub mod workload;

mod wrapper;

pub use ec_omega::{EcConfig, EcMsg, EcOmega};
pub use etob_omega::{CausalGraph, EtobConfig, EtobMsg, EtobOmega};
pub use harness::MultiInstanceProposer;
pub use spec::{
    BroadcastRecord, EcChecker, EcViolation, EicChecker, EicViolation, EtobChecker, ProposalRecord,
    TobViolation,
};
pub use tob_consensus::{ConsensusTob, ConsensusTobConfig, TobMsg};
pub use transforms::{EcToEic, EcToEtob, EicToEc, EtobToEc};
pub use types::{
    seq_hash_step, AppMessage, Compactable, DeliveredSequence, EcInput, EcOutput, EicInput,
    EicOutput, Either, EtobBroadcast, EventualConsensus, EventualIrrevocableConsensus,
    EventualTotalOrderBroadcast, Instrumented, MsgId, Payload, SEQ_HASH_SEED,
};
pub use version::{SeqRanges, VersionVector};
pub use workload::{BroadcastWorkload, KvOp, KvWorkload, ZipfMix};

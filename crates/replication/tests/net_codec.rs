//! Wire-codec conformance: round-trips for every message type that crosses
//! a `NetEngine` socket, and adversarial decoding.
//!
//! Two layers of guarantees are checked here. **Round-trip**: for arbitrary
//! instances of every wire enum (`EtobMsg`, `TobMsg`, heartbeats, commands,
//! outputs, frames), `decode(encode(x)) == x`. **Totality**: malformed
//! input of any shape — truncations, random bytes, bad tags, impossible
//! list counts, trailing garbage — yields a typed `DecodeError`, never a
//! panic; and on a live cluster, injected garbage increments the
//! malformed-frame counter while the protocol keeps converging.

use std::io::Write;
use std::net::TcpStream;
use std::time::{Duration, Instant};

use ec_core::etob_omega::{CausalGraph, EtobMsg};
use ec_core::tob_consensus::TobMsg;
use ec_core::types::{AppMessage, MsgId};
use ec_core::version::VersionVector;
use ec_detectors::HeartbeatMsg;
use ec_replication::net::codec::{
    decode_body, frame_bytes, DecodeError, Frame, Reader, WireCodec, MAX_FRAME_BODY,
};
use ec_replication::{
    Cluster, ClusterBuilder, KvStore, NetEngine, ReplicaCommand, ReplicaOutput, StateMachine,
};
use ec_sim::ProcessId;
use proptest::prelude::*;

fn roundtrip<T: WireCodec + PartialEq + std::fmt::Debug>(value: &T) {
    let mut bytes = Vec::new();
    value.encode(&mut bytes);
    let mut reader = Reader::new(&bytes);
    let back = T::decode(&mut reader).expect("canonical encoding decodes");
    reader
        .ensure_consumed()
        .expect("decode consumes everything");
    assert_eq!(&back, value);
}

/// Every strict prefix of a canonical encoding must fail with a typed
/// error (decoding reads a fixed layout, so losing tail bytes can only
/// truncate a field or leave a value incomplete — never panic).
fn assert_prefixes_fail<T: WireCodec>(value: &T) {
    let mut bytes = Vec::new();
    value.encode(&mut bytes);
    for cut in 0..bytes.len() {
        let mut reader = Reader::new(&bytes[..cut]);
        let outcome = T::decode(&mut reader).and_then(|_| reader.ensure_consumed());
        assert!(outcome.is_err(), "prefix of {cut} bytes decoded cleanly");
    }
}

fn arb_msg_id() -> impl Strategy<Value = MsgId> {
    (0usize..8, 0u64..1000).prop_map(|(p, seq)| MsgId::new(ProcessId::new(p), seq))
}

fn arb_payload() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(any::<u8>(), 0..24)
}

fn arb_app_message() -> impl Strategy<Value = AppMessage> {
    (
        arb_msg_id(),
        arb_payload(),
        prop::collection::vec(arb_msg_id(), 0..4),
    )
        .prop_map(|(id, payload, deps)| AppMessage::with_deps(id, payload, deps))
}

fn arb_messages() -> impl Strategy<Value = Vec<AppMessage>> {
    prop::collection::vec(arb_app_message(), 0..5)
}

fn arb_version_vector() -> impl Strategy<Value = VersionVector> {
    prop::collection::vec(arb_msg_id(), 0..16).prop_map(|ids| {
        let mut vector = VersionVector::new();
        for id in ids {
            vector.insert(id);
        }
        vector
    })
}

fn arb_graph() -> impl Strategy<Value = CausalGraph> {
    arb_messages().prop_map(|messages| {
        let mut graph = CausalGraph::new();
        for m in messages {
            // duplicate ids are dropped here, matching the canonical form
            let _ = graph.update(m);
        }
        graph
    })
}

fn arb_etob_msg() -> impl Strategy<Value = EtobMsg> {
    (
        any::<u8>(),
        arb_graph(),
        arb_version_vector(),
        arb_messages(),
        0usize..100,
        any::<u64>(),
    )
        .prop_map(
            |(selector, graph, digest, messages, base, hash)| match selector % 6 {
                0 => EtobMsg::Update(graph),
                1 => EtobMsg::Delta {
                    nodes: messages,
                    frontier: digest,
                },
                2 => EtobMsg::SyncRequest { digest },
                3 => EtobMsg::Promote(messages),
                4 => EtobMsg::PromoteDelta {
                    base,
                    prefix_hash: hash,
                    suffix: messages,
                },
                _ => EtobMsg::PromoteRequest,
            },
        )
}

fn arb_tob_msg() -> impl Strategy<Value = TobMsg> {
    (
        any::<u8>(),
        arb_app_message(),
        arb_msg_id(),
        any::<u64>(),
        any::<u64>(),
        arb_messages(),
    )
        .prop_map(|(selector, message, id, a, b, suffix)| match selector % 6 {
            0 => TobMsg::Forward(message),
            1 => TobMsg::Accept { slot: a, message },
            2 => TobMsg::Ack { slot: a, id },
            3 => TobMsg::Heads {
                next_slot: a,
                delivered: b,
            },
            4 => TobMsg::SyncRequest { have: a },
            _ => TobMsg::SyncReply {
                have: a,
                next_deliver_slot: b,
                suffix,
            },
        })
}

fn arb_command() -> impl Strategy<Value = ReplicaCommand> {
    (
        arb_payload(),
        prop::collection::vec(arb_msg_id(), 0..4),
        any::<bool>(),
        arb_msg_id(),
    )
        .prop_map(|(payload, deps, with_id, id)| {
            let command = ReplicaCommand::with_deps(payload, deps);
            if with_id {
                command.with_id(id)
            } else {
                command
            }
        })
}

proptest! {
    #[test]
    fn etob_messages_roundtrip(msg in arb_etob_msg()) {
        roundtrip(&msg);
        assert_prefixes_fail(&msg);
    }

    #[test]
    fn tob_messages_roundtrip(msg in arb_tob_msg()) {
        roundtrip(&msg);
        assert_prefixes_fail(&msg);
    }

    #[test]
    fn commands_and_outputs_roundtrip(
        command in arb_command(),
        applied in 0usize..10_000,
        snapshot in arb_payload(),
    ) {
        roundtrip(&command);
        let output = ReplicaOutput { applied, snapshot };
        roundtrip(&output);
        roundtrip(&HeartbeatMsg::Heartbeat);
    }

    #[test]
    fn frames_roundtrip_through_the_wire_form(msg in arb_etob_msg(), from in 0usize..8) {
        let frame = Frame::App { from: ProcessId::new(from), msg };
        let wire = frame_bytes(&frame);
        let declared =
            u32::from_be_bytes([wire[0], wire[1], wire[2], wire[3]]) as usize;
        prop_assert_eq!(declared, wire.len() - 4);
        prop_assert_eq!(decode_body::<EtobMsg>(&wire[4..]), Ok(frame));
    }

    #[test]
    fn tob_frames_roundtrip_through_the_wire_form(msg in arb_tob_msg(), from in 0usize..8) {
        let frame = Frame::App { from: ProcessId::new(from), msg };
        let wire = frame_bytes(&frame);
        prop_assert_eq!(decode_body::<TobMsg>(&wire[4..]), Ok(frame));
    }

    #[test]
    fn random_bytes_never_panic_the_decoder(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        // any outcome is fine; reaching the end of the case without a panic
        // is the property
        let _ = decode_body::<EtobMsg>(&bytes);
        let _ = decode_body::<TobMsg>(&bytes);
    }

    #[test]
    fn corrupted_encodings_never_panic_the_decoder(
        msg in arb_etob_msg(),
        at in any::<usize>(),
        xor in 1u8..=255,
    ) {
        let mut wire = frame_bytes(&Frame::App { from: ProcessId::new(0), msg });
        let position = 4 + at % (wire.len() - 4);
        wire[position] ^= xor;
        // the flip may still decode (e.g. a payload byte) or fail — both
        // are acceptable; panicking or over-reading is not
        let _ = decode_body::<EtobMsg>(&wire[4..]);
    }
}

#[test]
fn adversarial_corpus_yields_typed_errors() {
    // unknown tags at every enum level
    assert_eq!(
        decode_body::<EtobMsg>(&[99]),
        Err(DecodeError::BadTag {
            context: "Frame",
            tag: 99
        })
    );
    let mut reader = Reader::new(&[77]);
    assert_eq!(
        EtobMsg::decode(&mut reader),
        Err(DecodeError::BadTag {
            context: "EtobMsg",
            tag: 77
        })
    );
    let mut reader = Reader::new(&[88]);
    assert_eq!(
        TobMsg::decode(&mut reader),
        Err(DecodeError::BadTag {
            context: "TobMsg",
            tag: 88
        })
    );
    let mut reader = Reader::new(&[1]);
    assert_eq!(
        HeartbeatMsg::decode(&mut reader),
        Err(DecodeError::BadTag {
            context: "HeartbeatMsg",
            tag: 1
        })
    );

    // the empty body
    assert!(matches!(
        decode_body::<EtobMsg>(&[]),
        Err(DecodeError::Truncated { .. })
    ));

    // trailing bytes after a complete frame
    assert_eq!(
        decode_body::<EtobMsg>(&[6, 0, 0]),
        Err(DecodeError::TrailingBytes { remaining: 2 })
    );

    // a dependency count no input of sane size could satisfy: rejected
    // before allocation, so u32::MAX never turns into a reserve call
    let mut body = vec![3u8];
    body.extend_from_slice(&0u32.to_be_bytes());
    body.extend_from_slice(&u32::MAX.to_be_bytes());
    assert!(matches!(
        decode_body::<EtobMsg>(&body),
        Err(DecodeError::BadLength { .. })
    ));

    // a promote base overflowing the platform's usize still maps to a
    // typed error on 64-bit (where it fits) or BadLength elsewhere; what
    // must hold everywhere is totality over the 8-byte field
    let mut body = vec![1u8, 0, 0, 0, 0, 4];
    body.extend_from_slice(&u64::MAX.to_be_bytes());
    assert!(decode_body::<EtobMsg>(&body).is_err());

    // the cap constant is what the transport enforces per frame
    assert_eq!(MAX_FRAME_BODY, 16 << 20);
}

/// Injecting garbage into live node sockets increments the malformed-frame
/// counter and closes only the offending connections: the cluster still
/// converges, and a clean run counts zero.
#[test]
fn live_nodes_count_malformed_frames_and_keep_converging() {
    let mut cluster: Cluster<KvStore> = ClusterBuilder::new(2).deploy(&NetEngine::default());
    assert_eq!(cluster.malformed_frames(), 0);
    let addr = cluster
        .node_addr(ProcessId::new(0))
        .expect("the net engine exposes node addresses");

    // connection 1: no Hello at all — an unknown tag right away
    let mut garbage = TcpStream::connect(addr).expect("dial node");
    garbage
        .write_all(&[0, 0, 0, 1, 99])
        .expect("write bad frame");

    // connection 2: a valid Hello, then a truncated body
    let mut truncating = TcpStream::connect(addr).expect("dial node");
    truncating
        .write_all(&[0, 0, 0, 5, 0, 0, 0, 0, 7])
        .expect("write hello");
    truncating
        .write_all(&[0, 0, 0, 3, 1, 0, 0])
        .expect("write truncated frame");

    // connection 3: an oversized length prefix, rejected before allocation
    let mut oversized = TcpStream::connect(addr).expect("dial node");
    oversized
        .write_all(&u32::MAX.to_be_bytes())
        .expect("write oversized prefix");

    let deadline = Instant::now() + Duration::from_secs(10);
    while cluster.malformed_frames() < 3 {
        assert!(
            Instant::now() < deadline,
            "only {} of 3 malformed frames were counted",
            cluster.malformed_frames()
        );
        std::thread::sleep(Duration::from_millis(2));
    }

    // the protocol connections are unaffected: the cluster still converges
    let mut session = cluster.session();
    cluster.submit(&mut session, KvStore::put("k", "v"), 10);
    assert!(
        cluster.run_until_applied(1, 10_000),
        "cluster stopped converging after malformed input"
    );
    let report = cluster.finish();
    assert!(report.shards[0].snapshots_agree());

    let mut expected = KvStore::default();
    expected.apply(&KvStore::put("k", "v"));
    assert_eq!(report.shards[0].snapshots[0], expected.snapshot());
}

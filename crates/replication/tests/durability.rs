//! Durable recovery on the socket engine: a `NetEngine` node is killed and
//! restarted behind the same address with `ClusterBuilder::durable(dir)`,
//! and must converge **byte-identically** to a never-crashed control
//! cluster running the same workload — recovering its pre-crash state from
//! the record log + snapshot store and using anti-entropy only for the
//! suffix it missed while down.
//!
//! The compaction variant is the sharp end: with stable-prefix compaction
//! enabled, the surviving peers may have folded the prefix out of resident
//! state, so a blank-slate restart could never be healed by anti-entropy —
//! only disk recovery can seat the restarted node back into the group.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use ec_core::etob_omega::EtobConfig;
use ec_replication::{Cluster, ClusterBuilder, KvStore, NetEngine, StateMachine};
use ec_sim::ProcessId;

fn unique_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("ec-durability-{}-{tag}-{n}", std::process::id()))
}

/// Phase 1 of the shared workload: six puts spread over two sessions.
fn phase_one(cluster: &mut Cluster<KvStore>) {
    let mut a = cluster.session();
    let mut b = cluster.session();
    for k in 0..3u64 {
        cluster.submit(&mut a, KvStore::put(&format!("a{k}"), &format!("v{k}")), 5);
        cluster.submit(&mut b, KvStore::put(&format!("b{k}"), &format!("w{k}")), 5);
    }
}

/// Phase 2: four more puts, entering through replica 0 (which is alive in
/// both runs — in the crash run, replica 2 is down at this point).
fn phase_two(cluster: &mut Cluster<KvStore>) {
    let mut s = cluster.session_at(ProcessId::new(0));
    for k in 0..4u64 {
        cluster.submit(&mut s, KvStore::put(&format!("late{k}"), "z"), 5);
    }
}

const TOTAL_OPS: usize = 10;
const MAX_T: u64 = 30_000;

/// Runs the workload with a crash + durable restart of replica 2 between
/// the phases, and returns the byte-identical converged snapshot.
fn crash_run(etob: EtobConfig, dir: PathBuf) -> Vec<u8> {
    let mut cluster: Cluster<KvStore> = ClusterBuilder::new(3)
        .etob(etob)
        .durable(&dir)
        .deploy(&NetEngine::default());
    phase_one(&mut cluster);
    assert!(
        cluster.run_until_applied(6, MAX_T),
        "phase one did not converge"
    );

    let victim = ProcessId::new(2);
    assert!(cluster.crash(victim), "net engine supports crashes");
    // the victim's durable directory must hold a non-trivial record log
    let log = dir.join("2").join("replica.eclog");
    let log_len = std::fs::metadata(&log).expect("victim log exists").len();
    assert!(log_len > 8, "victim logged its delivered state: {log_len}");

    phase_two(&mut cluster);
    assert!(
        cluster.run_until_applied(TOTAL_OPS, MAX_T),
        "survivors did not converge while the victim was down"
    );

    assert!(cluster.restart(victim), "victim restarts");
    assert!(
        cluster.run_until_applied(TOTAL_OPS, MAX_T),
        "restarted replica did not catch up"
    );

    let report = cluster.finish();
    assert_eq!(report.shards[0].applied, vec![TOTAL_OPS; 3]);
    assert!(
        report.shards[0].snapshots_agree(),
        "snapshots diverged after durable recovery"
    );
    let _ = std::fs::remove_dir_all(&dir);
    report.shards[0].snapshots[0].clone()
}

/// The never-crashed control: same workload, no durability, no faults.
fn control_run(etob: EtobConfig) -> Vec<u8> {
    let mut cluster: Cluster<KvStore> = ClusterBuilder::new(3)
        .etob(etob)
        .deploy(&NetEngine::default());
    phase_one(&mut cluster);
    assert!(cluster.run_until_applied(6, MAX_T), "control phase one");
    phase_two(&mut cluster);
    assert!(
        cluster.run_until_applied(TOTAL_OPS, MAX_T),
        "control phase two"
    );
    let report = cluster.finish();
    assert!(report.shards[0].snapshots_agree());
    report.shards[0].snapshots[0].clone()
}

/// The expected state is also computable directly — both runs must land on
/// exactly these bytes, so "byte-identical" is anchored to ground truth,
/// not merely to each other.
fn expected_snapshot() -> Vec<u8> {
    let mut state = KvStore::default();
    for k in 0..3u64 {
        state.apply(&KvStore::put(&format!("a{k}"), &format!("v{k}")));
        state.apply(&KvStore::put(&format!("b{k}"), &format!("w{k}")));
    }
    for k in 0..4u64 {
        state.apply(&KvStore::put(&format!("late{k}"), "z"));
    }
    state.snapshot()
}

#[test]
fn net_restart_with_durable_dir_matches_never_crashed_control() {
    let etob = EtobConfig::default();
    let crashed = crash_run(etob, unique_dir("plain"));
    let control = control_run(etob);
    assert_eq!(
        crashed, control,
        "durable restart must be byte-identical to the control"
    );
    assert_eq!(crashed, expected_snapshot());
}

#[test]
fn net_restart_recovers_under_stable_prefix_compaction() {
    // Aggressive folding: every 2 delivered entries are eligible, so by the
    // time the victim restarts the survivors have folded most of the
    // history out of resident state — the restarted node *must* come back
    // from disk to rejoin.
    let etob = EtobConfig::default().with_compaction(2);
    let crashed = crash_run(etob, unique_dir("compacted"));
    let control = control_run(etob);
    assert_eq!(
        crashed, control,
        "durable restart under compaction must match the control"
    );
    assert_eq!(crashed, expected_snapshot());
}

#[test]
fn durable_dirs_are_created_per_replica_and_survive_finish() {
    let dir = unique_dir("layout");
    let mut cluster: Cluster<KvStore> = ClusterBuilder::new(2)
        .durable(&dir)
        .deploy(&NetEngine::default());
    let mut s = cluster.session();
    cluster.submit(&mut s, KvStore::put("k", "v"), 5);
    assert!(cluster.run_until_applied(1, MAX_T));
    let report = cluster.finish();
    assert!(report.shards[0].snapshots_agree());
    for replica in 0..2 {
        let log = dir.join(replica.to_string()).join("replica.eclog");
        assert!(log.is_file(), "replica {replica} has a record log");
        assert!(
            dir.join(replica.to_string()).join("snapshots").is_dir(),
            "replica {replica} has a snapshot directory"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

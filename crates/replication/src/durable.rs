//! Durable replica state: a per-replica record log plus snapshot store
//! ([`ec_storage`]) under a typed facade, so a crashed node rejoins from
//! disk and uses anti-entropy only for the suffix it missed.
//!
//! ## On-disk layout
//!
//! Each replica owns one directory (`<cluster dir>/<replica index>/`):
//!
//! ```text
//! replica.eclog       append-only record log (ec-storage RecordLog)
//! snapshots/          atomic checkpoint store (ec-storage SnapshotStore)
//! ```
//!
//! ## Log records
//!
//! Every log record body is one tagged structure (total decoding — corrupt
//! bodies end replay, they never panic):
//!
//! ```text
//! Base     := 0 base:u64 hash:u64     the absolute index the entries that
//!                                     follow extend, plus the rolling
//!                                     identifier hash of everything below it
//! Entry    := 1 AppMessage            one delivered entry, in order
//! Truncate := 2 to:u64                the delivered suffix from absolute
//!                                     index `to` was reordered; discard it
//! OwnSeq   := 3 seq:u64               high-water mark of locally assigned
//!                                     sequence numbers (id-reuse guard)
//! ```
//!
//! `Truncate` exists because an *eventual* total order may reorder its
//! uncommitted suffix: the log mirrors the current delivered sequence, not
//! a grow-only history.
//!
//! ## Checkpoints
//!
//! A checkpoint publishes one snapshot — `base`, `hash`, the compacted
//! identifier frontier, the state-machine snapshot at `base`, and the
//! own-sequence high-water mark — then atomically rewrites the log down to
//! `Base` + the resident tail. Recovery therefore composes the newest valid
//! snapshot with the log tail, verifying the **hash linkage** between them:
//! log entries below the snapshot's base must hash (from the log's base
//! hash) to exactly the snapshot's hash, otherwise the log is distrusted
//! and recovery falls back to the snapshot alone.
//!
//! ## Failure policy
//!
//! Appends are plain `write(2)` calls (they survive a process kill; the
//! periodic checkpoint fsyncs), and any I/O error flips the store into a
//! **degraded** mode that stops persisting but never panics and never
//! disturbs the in-memory replica — durability is best-effort by design,
//! correctness never depends on it.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use ec_core::types::{seq_hash_step, AppMessage, MsgId, SEQ_HASH_SEED};
use ec_core::VersionVector;
use ec_storage::codec::{push_bytes, push_u64};
use ec_storage::{
    DecodeError, LogError, Reader, RecordLog, SnapshotError, SnapshotStore, WireCodec,
};

/// Durability configuration for one replica group.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DurableOptions {
    /// Root directory; each replica persists under `<dir>/<replica index>/`.
    pub dir: PathBuf,
    /// Checkpoint after this many newly logged entries (clamped to ≥ 1).
    pub checkpoint_every: usize,
    /// Snapshots retained per replica (clamped to ≥ 1 by the store).
    pub keep_snapshots: usize,
}

impl DurableOptions {
    /// Options rooted at `dir` with the default cadence (checkpoint every 8
    /// entries, keep 3 snapshots).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DurableOptions {
            dir: dir.into(),
            checkpoint_every: 8,
            keep_snapshots: 3,
        }
    }

    /// Sets the checkpoint cadence (entries between checkpoints).
    pub fn checkpoint_every(mut self, entries: usize) -> Self {
        self.checkpoint_every = entries;
        self
    }

    /// Sets the snapshot retention count.
    pub fn keep_snapshots(mut self, keep: usize) -> Self {
        self.keep_snapshots = keep;
        self
    }

    /// The same options scoped to one replica's subdirectory.
    pub fn for_replica(&self, index: usize) -> DurableOptions {
        DurableOptions {
            dir: self.dir.join(index.to_string()),
            checkpoint_every: self.checkpoint_every,
            keep_snapshots: self.keep_snapshots,
        }
    }
}

/// Why a durable store could not be opened.
#[derive(Debug)]
pub enum DurableError {
    /// The record log failed to open or rewrite.
    Log(LogError),
    /// The snapshot store failed to open or read.
    Snapshot(SnapshotError),
    /// The replica directory could not be created.
    Io(io::Error),
}

impl fmt::Display for DurableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurableError::Log(e) => write!(f, "durable log error: {e}"),
            DurableError::Snapshot(e) => write!(f, "durable snapshot error: {e}"),
            DurableError::Io(e) => write!(f, "durable directory error: {e}"),
        }
    }
}

impl std::error::Error for DurableError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DurableError::Log(e) => Some(e),
            DurableError::Snapshot(e) => Some(e),
            DurableError::Io(e) => Some(e),
        }
    }
}

impl From<LogError> for DurableError {
    fn from(e: LogError) -> Self {
        DurableError::Log(e)
    }
}

impl From<SnapshotError> for DurableError {
    fn from(e: SnapshotError) -> Self {
        DurableError::Snapshot(e)
    }
}

/// Everything recovered from disk when a durable store opens: the checkpoint
/// triple (`base`, `hash`, `frontier`), the state-machine snapshot bytes at
/// `base`, the delivered tail beyond it, and the own-sequence high-water
/// mark.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Recovered {
    /// Absolute number of delivered entries folded below the checkpoint.
    pub base: u64,
    /// Rolling identifier hash of those `base` entries
    /// ([`SEQ_HASH_SEED`]-seeded).
    pub hash: u64,
    /// Exact identifier digest of the folded prefix.
    pub frontier: VersionVector,
    /// State-machine snapshot at `base` (empty when `base == 0`).
    pub state: Vec<u8>,
    /// Delivered entries beyond `base`, in order.
    pub tail: Vec<AppMessage>,
    /// Highest locally assigned sequence number ever recorded.
    pub own_seq: u64,
}

/// File name of the per-replica record log.
pub const LOG_FILE: &str = "replica.eclog";
/// Subdirectory holding the per-replica snapshots.
pub const SNAPSHOT_DIR: &str = "snapshots";

const REC_BASE: u8 = 0;
const REC_ENTRY: u8 = 1;
const REC_TRUNCATE: u8 = 2;
const REC_OWN_SEQ: u8 = 3;

/// One decoded log record.
#[derive(Clone, Debug, PartialEq, Eq)]
enum LogRecord {
    Base { base: u64, hash: u64 },
    Entry(AppMessage),
    Truncate { to: u64 },
    OwnSeq(u64),
}

fn encode_base(base: u64, hash: u64) -> Vec<u8> {
    let mut out = vec![REC_BASE];
    push_u64(&mut out, base);
    push_u64(&mut out, hash);
    out
}

fn encode_entry(message: &AppMessage) -> Vec<u8> {
    let mut out = vec![REC_ENTRY];
    message.encode(&mut out);
    out
}

fn encode_truncate(to: u64) -> Vec<u8> {
    let mut out = vec![REC_TRUNCATE];
    push_u64(&mut out, to);
    out
}

fn encode_own_seq(seq: u64) -> Vec<u8> {
    let mut out = vec![REC_OWN_SEQ];
    push_u64(&mut out, seq);
    out
}

fn decode_record(body: &[u8]) -> Result<LogRecord, DecodeError> {
    let mut r = Reader::new(body);
    let record = match r.read_u8()? {
        REC_BASE => LogRecord::Base {
            base: r.read_u64()?,
            hash: r.read_u64()?,
        },
        REC_ENTRY => LogRecord::Entry(AppMessage::decode(&mut r)?),
        REC_TRUNCATE => LogRecord::Truncate { to: r.read_u64()? },
        REC_OWN_SEQ => LogRecord::OwnSeq(r.read_u64()?),
        tag => {
            return Err(DecodeError::BadTag {
                context: "durable log record",
                tag,
            })
        }
    };
    r.ensure_consumed()?;
    Ok(record)
}

fn encode_snapshot_body(
    base: u64,
    hash: u64,
    frontier: &VersionVector,
    state: &[u8],
    own_seq: u64,
) -> Vec<u8> {
    let mut out = Vec::new();
    push_u64(&mut out, base);
    push_u64(&mut out, hash);
    frontier.encode(&mut out);
    push_bytes(&mut out, state);
    push_u64(&mut out, own_seq);
    out
}

fn decode_snapshot_body(
    body: &[u8],
) -> Result<(u64, u64, VersionVector, Vec<u8>, u64), DecodeError> {
    let mut r = Reader::new(body);
    let base = r.read_u64()?;
    let hash = r.read_u64()?;
    let frontier = VersionVector::decode(&mut r)?;
    let state = r.read_bytes()?.to_vec();
    let own_seq = r.read_u64()?;
    r.ensure_consumed()?;
    Ok((base, hash, frontier, state, own_seq))
}

/// The durable store for one replica: a [`RecordLog`] mirroring the current
/// delivered tail plus a [`SnapshotStore`] of periodic checkpoints.
#[derive(Debug)]
pub struct DurableStore {
    log: RecordLog,
    snapshots: SnapshotStore,
    /// Absolute base the logged entries extend (the last `Base` record).
    log_base: u64,
    /// Identifier mirror of the `Entry` records currently live in the log
    /// (post-`Truncate`), so tail updates append only the changed suffix.
    logged: Vec<MsgId>,
    /// Own-sequence high-water mark already on disk.
    own_seq: u64,
    /// Entries appended since the last checkpoint.
    since_checkpoint: usize,
    checkpoint_every: usize,
    next_snapshot_id: u64,
    degraded: bool,
}

impl DurableStore {
    /// Opens (creating if absent) the store in `options.dir`, recovering
    /// whatever the directory holds. The log is rewritten into canonical
    /// `Base` + tail form on the way out, so a recovery-of-a-recovery is
    /// exact.
    pub fn open(
        options: &DurableOptions,
    ) -> Result<(DurableStore, Option<Recovered>), DurableError> {
        fs::create_dir_all(&options.dir).map_err(DurableError::Io)?;
        let snapshots =
            SnapshotStore::open(options.dir.join(SNAPSHOT_DIR), options.keep_snapshots)?;
        let (_, log_recovery) = RecordLog::open(options.dir.join(LOG_FILE))?;

        // Replay the log into (base, hash, entries, own_seq). A record body
        // that fails to decode ends the replay — everything before it is
        // intact (the CRC layer already dropped torn tails).
        let mut log_base = 0u64;
        let mut log_hash = SEQ_HASH_SEED;
        let mut entries: Vec<AppMessage> = Vec::new();
        let mut own_seq = 0u64;
        for body in &log_recovery.records {
            match decode_record(body) {
                Ok(LogRecord::Base { base, hash }) => {
                    entries.clear();
                    log_base = base;
                    log_hash = hash;
                }
                Ok(LogRecord::Entry(message)) => entries.push(message),
                Ok(LogRecord::Truncate { to }) => {
                    let keep = usize::try_from(to.saturating_sub(log_base)).unwrap_or(0);
                    entries.truncate(keep);
                }
                Ok(LogRecord::OwnSeq(seq)) => own_seq = own_seq.max(seq),
                Err(_) => break,
            }
        }

        // Compose with the newest structurally valid snapshot.
        let snapshot = snapshots
            .latest()?
            .and_then(|s| decode_snapshot_body(&s.body).ok());
        let (base, hash, frontier, state, tail) = match snapshot {
            Some((base, hash, frontier, state, snap_own_seq)) => {
                own_seq = own_seq.max(snap_own_seq);
                let tail = if base >= log_base {
                    let skip = usize::try_from(base - log_base).unwrap_or(usize::MAX);
                    if skip <= entries.len() {
                        // Hash linkage: the logged entries the snapshot
                        // subsumes must reproduce exactly its prefix hash,
                        // or the log belongs to a different history.
                        let linked = entries
                            .iter()
                            .take(skip)
                            .fold(log_hash, |h, m| seq_hash_step(h, m.id));
                        if linked == hash {
                            entries.split_off(skip)
                        } else {
                            Vec::new()
                        }
                    } else {
                        // The log ends below the snapshot's base (crash
                        // between snapshot publish and log rewrite with a
                        // short log): the snapshot alone is authoritative.
                        Vec::new()
                    }
                } else {
                    // The log's base outruns the best surviving snapshot
                    // (the newer snapshot rotted): the gap below the log is
                    // unreachable, so trust only the snapshot.
                    Vec::new()
                };
                (base, hash, frontier, state, tail)
            }
            None if log_base == 0 => {
                // Log-only recovery: full tail from the beginning.
                (0, SEQ_HASH_SEED, VersionVector::new(), Vec::new(), entries)
            }
            None => {
                // A folded log with no snapshot cannot reconstruct its base
                // state; keep only the id-reuse guard.
                (
                    0,
                    SEQ_HASH_SEED,
                    VersionVector::new(),
                    Vec::new(),
                    Vec::new(),
                )
            }
        };

        // Canonical rewrite: Base + tail + own-seq high-water mark.
        let mut bodies: Vec<Vec<u8>> = Vec::with_capacity(tail.len() + 2);
        bodies.push(encode_base(base, hash));
        bodies.extend(tail.iter().map(encode_entry));
        if own_seq > 0 {
            bodies.push(encode_own_seq(own_seq));
        }
        let log = RecordLog::rewrite(options.dir.join(LOG_FILE), bodies.iter().map(Vec::as_slice))?;

        let next_snapshot_id = snapshots.ids()?.last().map_or(1, |newest| newest + 1);
        let recovered = if base > 0 || !tail.is_empty() || own_seq > 0 {
            Some(Recovered {
                base,
                hash,
                frontier,
                state,
                tail: tail.clone(),
                own_seq,
            })
        } else {
            None
        };
        Ok((
            DurableStore {
                log,
                snapshots,
                log_base: base,
                logged: tail.iter().map(|m| m.id).collect(),
                own_seq,
                since_checkpoint: 0,
                checkpoint_every: options.checkpoint_every.max(1),
                next_snapshot_id,
                degraded: false,
            },
            recovered,
        ))
    }

    /// Mirrors the current delivered tail (`tail`, starting at absolute
    /// index `base` with prefix hash `hash`) into the log, appending only
    /// the changed suffix: a `Truncate` where the sequences first disagree,
    /// then the new entries.
    pub fn record_tail(&mut self, base: u64, hash: u64, tail: &[AppMessage]) {
        if self.degraded {
            return;
        }
        let skip = match usize::try_from(base.saturating_sub(self.log_base)) {
            Ok(skip) if skip <= self.logged.len() => skip,
            // The tail starts beyond everything logged — an invariant
            // breach (folds can only cover logged entries). Re-anchor the
            // whole log rather than persist a gapped history.
            _ => {
                self.rewrite_to(base, hash, tail);
                return;
            }
        };
        // First index (relative to `tail`) where log and tail disagree.
        // (`skip <= logged.len()` was just checked, so the slice is total.)
        let lived = self.logged.get(skip..).unwrap_or(&[]);
        let agree = lived
            .iter()
            .zip(tail.iter())
            .take_while(|(logged, new)| **logged == new.id)
            .count();
        if lived.len() > agree {
            // The delivered suffix was reordered (or shrank): cut it.
            let cut = base + agree as u64;
            if self.append(&encode_truncate(cut)).is_err() {
                return;
            }
            self.logged.truncate(skip + agree);
        }
        for message in tail.iter().skip(agree) {
            if self.append(&encode_entry(message)).is_err() {
                return;
            }
            self.logged.push(message.id);
            self.since_checkpoint += 1;
        }
    }

    /// Records a new own-sequence high-water mark (no-op unless it grew).
    pub fn record_own_seq(&mut self, seq: u64) {
        if self.degraded || seq <= self.own_seq {
            return;
        }
        if self.append(&encode_own_seq(seq)).is_ok() {
            self.own_seq = seq;
        }
    }

    /// Whether enough entries accumulated since the last checkpoint.
    pub fn checkpoint_due(&self) -> bool {
        !self.degraded && self.since_checkpoint >= self.checkpoint_every
    }

    /// Publishes a checkpoint — snapshot first (atomic), then the log is
    /// rewritten down to `Base` + the resident tail — and fsyncs both.
    pub fn checkpoint(
        &mut self,
        base: u64,
        hash: u64,
        frontier: &VersionVector,
        state: &[u8],
        tail: &[AppMessage],
        own_seq: u64,
    ) {
        if self.degraded {
            return;
        }
        let body = encode_snapshot_body(base, hash, frontier, state, own_seq.max(self.own_seq));
        if self
            .snapshots
            .publish(self.next_snapshot_id, &body)
            .is_err()
        {
            self.degraded = true;
            return;
        }
        self.next_snapshot_id += 1;
        self.own_seq = self.own_seq.max(own_seq);
        self.rewrite_to(base, hash, tail);
        self.since_checkpoint = 0;
    }

    /// Whether an I/O error has disabled persistence (the replica keeps
    /// running purely in memory).
    pub fn degraded(&self) -> bool {
        self.degraded
    }

    /// The record log's file path.
    pub fn log_path(&self) -> &Path {
        self.log.path()
    }

    /// The snapshot directory.
    pub fn snapshot_dir(&self) -> &Path {
        self.snapshots.dir()
    }

    /// Entries appended since the last checkpoint.
    pub fn entries_since_checkpoint(&self) -> usize {
        self.since_checkpoint
    }

    fn append(&mut self, body: &[u8]) -> Result<(), ()> {
        match self.log.append(body) {
            Ok(()) => Ok(()),
            Err(_) => {
                self.degraded = true;
                Err(())
            }
        }
    }

    /// Atomically replaces the log with `Base` + `tail` (+ own-seq mark).
    fn rewrite_to(&mut self, base: u64, hash: u64, tail: &[AppMessage]) {
        let mut bodies: Vec<Vec<u8>> = Vec::with_capacity(tail.len() + 2);
        bodies.push(encode_base(base, hash));
        bodies.extend(tail.iter().map(encode_entry));
        if self.own_seq > 0 {
            bodies.push(encode_own_seq(self.own_seq));
        }
        match RecordLog::rewrite(
            self.log.path().to_path_buf(),
            bodies.iter().map(Vec::as_slice),
        ) {
            Ok(log) => {
                self.log = log;
                self.log_base = base;
                self.logged = tail.iter().map(|m| m.id).collect();
            }
            Err(_) => self.degraded = true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ec_core::types::Payload;
    use ec_sim::ProcessId;

    fn tmp_dir(tag: &str) -> PathBuf {
        static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        std::env::temp_dir().join(format!("ec-durable-{}-{tag}-{n}", std::process::id()))
    }

    fn msg(origin: usize, seq: u64) -> AppMessage {
        AppMessage::new(
            MsgId::new(ProcessId::new(origin), seq),
            Payload::from(format!("m{origin}.{seq}").into_bytes()),
        )
    }

    fn roll(h0: u64, tail: &[AppMessage]) -> u64 {
        tail.iter().fold(h0, |h, m| seq_hash_step(h, m.id))
    }

    #[test]
    fn fresh_store_recovers_nothing_and_roundtrips_a_tail() {
        let dir = tmp_dir("fresh");
        let opts = DurableOptions::new(&dir).checkpoint_every(100);
        let (mut store, recovered) = DurableStore::open(&opts).expect("open");
        assert!(recovered.is_none());
        assert!(!store.degraded());
        let tail = vec![msg(0, 1), msg(1, 1), msg(0, 2)];
        store.record_tail(0, SEQ_HASH_SEED, &tail);
        store.record_own_seq(2);
        drop(store);
        let (_, recovered) = DurableStore::open(&opts).expect("reopen");
        let recovered = recovered.expect("recovered");
        assert_eq!(recovered.base, 0);
        assert_eq!(recovered.hash, SEQ_HASH_SEED);
        assert_eq!(recovered.tail, tail);
        assert_eq!(recovered.own_seq, 2);
        assert!(recovered.state.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn reordered_suffixes_are_truncated_not_duplicated() {
        let dir = tmp_dir("reorder");
        let opts = DurableOptions::new(&dir).checkpoint_every(100);
        let (mut store, _) = DurableStore::open(&opts).expect("open");
        let first = vec![msg(0, 1), msg(1, 1), msg(1, 2)];
        store.record_tail(0, SEQ_HASH_SEED, &first);
        // the eventual order reshuffles everything after the first entry
        let second = vec![msg(0, 1), msg(1, 2), msg(1, 1), msg(2, 1)];
        store.record_tail(0, SEQ_HASH_SEED, &second);
        drop(store);
        let (_, recovered) = DurableStore::open(&opts).expect("reopen");
        assert_eq!(recovered.expect("recovered").tail, second);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_plus_log_tail_compose_with_hash_linkage() {
        let dir = tmp_dir("checkpoint");
        let opts = DurableOptions::new(&dir).checkpoint_every(100);
        let (mut store, _) = DurableStore::open(&opts).expect("open");
        let all: Vec<AppMessage> = (1..=6).map(|s| msg(0, s)).collect();
        store.record_tail(0, SEQ_HASH_SEED, &all);
        // fold the first four entries into a checkpoint
        let fold_hash = roll(SEQ_HASH_SEED, &all[..4]);
        let mut frontier = VersionVector::new();
        for m in &all[..4] {
            frontier.insert(m.id);
        }
        store.checkpoint(4, fold_hash, &frontier, b"state@4", &all[4..], 6);
        // more entries arrive after the checkpoint
        let late = msg(1, 1);
        let tail: Vec<AppMessage> = all[4..].iter().cloned().chain([late]).collect();
        store.record_tail(4, fold_hash, &tail);
        drop(store);
        let (store, recovered) = DurableStore::open(&opts).expect("reopen");
        let recovered = recovered.expect("recovered");
        assert_eq!(recovered.base, 4);
        assert_eq!(recovered.hash, fold_hash);
        assert_eq!(recovered.frontier, frontier);
        assert_eq!(recovered.state, b"state@4".to_vec());
        assert_eq!(recovered.tail, tail);
        assert_eq!(recovered.own_seq, 6);
        assert!(!store.degraded());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_ahead_of_log_wins_and_verifies_linkage() {
        let dir = tmp_dir("linkage");
        let opts = DurableOptions::new(&dir).checkpoint_every(100);
        let (mut store, _) = DurableStore::open(&opts).expect("open");
        let all: Vec<AppMessage> = (1..=3).map(|s| msg(0, s)).collect();
        store.record_tail(0, SEQ_HASH_SEED, &all);
        drop(store);
        // simulate a crash between snapshot publish and log rewrite: publish
        // a snapshot at base 2 by hand, leaving the log at base 0.
        let fold_hash = roll(SEQ_HASH_SEED, &all[..2]);
        let mut frontier = VersionVector::new();
        for m in &all[..2] {
            frontier.insert(m.id);
        }
        let body = encode_snapshot_body(2, fold_hash, &frontier, b"state@2", 3);
        let mut snaps = SnapshotStore::open(dir.join(SNAPSHOT_DIR), 3).expect("snaps");
        snaps.publish(1, &body).expect("publish");
        let (_, recovered) = DurableStore::open(&opts).expect("reopen");
        let recovered = recovered.expect("recovered");
        assert_eq!(recovered.base, 2);
        assert_eq!(recovered.state, b"state@2".to_vec());
        // entries 1..=2 were subsumed (linkage verified), entry 3 survives
        assert_eq!(recovered.tail, vec![all[2].clone()]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn divergent_log_is_distrusted_on_linkage_mismatch() {
        let dir = tmp_dir("divergent");
        let opts = DurableOptions::new(&dir).checkpoint_every(100);
        let (mut store, _) = DurableStore::open(&opts).expect("open");
        let all: Vec<AppMessage> = (1..=3).map(|s| msg(0, s)).collect();
        store.record_tail(0, SEQ_HASH_SEED, &all);
        drop(store);
        // a snapshot whose hash does NOT match the logged prefix
        let body = encode_snapshot_body(2, 0xDEAD_BEEF, &VersionVector::new(), b"state@2", 0);
        let mut snaps = SnapshotStore::open(dir.join(SNAPSHOT_DIR), 3).expect("snaps");
        snaps.publish(1, &body).expect("publish");
        let (_, recovered) = DurableStore::open(&opts).expect("reopen");
        let recovered = recovered.expect("recovered");
        assert_eq!(recovered.base, 2);
        assert!(recovered.tail.is_empty(), "divergent log must be dropped");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_log_tail_recovers_the_intact_prefix() {
        let dir = tmp_dir("torn");
        let opts = DurableOptions::new(&dir).checkpoint_every(100);
        let (mut store, _) = DurableStore::open(&opts).expect("open");
        let all: Vec<AppMessage> = (1..=4).map(|s| msg(0, s)).collect();
        store.record_tail(0, SEQ_HASH_SEED, &all);
        let log_path = store.log_path().to_path_buf();
        drop(store);
        // chop bytes off the log tail: the last record is torn
        let bytes = fs::read(&log_path).expect("read");
        fs::write(&log_path, &bytes[..bytes.len() - 7]).expect("write");
        let (_, recovered) = DurableStore::open(&opts).expect("reopen");
        let tail = recovered.expect("recovered").tail;
        assert_eq!(tail, all[..3].to_vec(), "intact prefix survives");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn record_codec_is_total_on_corrupt_bodies() {
        let good = encode_entry(&msg(3, 9));
        assert!(matches!(decode_record(&good), Ok(LogRecord::Entry(_))));
        for cut in 0..good.len() {
            assert!(decode_record(&good[..cut]).is_err(), "prefix {cut}");
        }
        let mut long = good.clone();
        long.push(0);
        assert!(decode_record(&long).is_err());
        assert!(matches!(
            decode_record(&[9, 0, 0]),
            Err(DecodeError::BadTag { .. })
        ));
        let base = encode_base(7, 42);
        assert_eq!(
            decode_record(&base),
            Ok(LogRecord::Base { base: 7, hash: 42 })
        );
        let tr = encode_truncate(5);
        assert_eq!(decode_record(&tr), Ok(LogRecord::Truncate { to: 5 }));
    }
}

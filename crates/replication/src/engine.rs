//! Execution engines: *where* a replicated service runs.
//!
//! The paper's headline claim is substrate-independence: Ω suffices for
//! eventual consistency in any environment, and the algorithms are not
//! simulator artifacts. This module turns that claim into an API: an
//! [`Engine`] is a deployment target for a replica group, and the same
//! [`crate::cluster::Cluster`] facade drives either of the two provided
//! engines —
//!
//! * [`SimEngine`] — the deterministic simulator of `ec-sim`
//!   ([`WorldBuilder`]/[`World`]): virtual time, scripted Ω/Σ oracles,
//!   scriptable partitions and crash patterns, bit-reproducible runs;
//! * [`ThreadEngine`] — the real-time runtime of `ec-runtime`
//!   ([`Runtime`]): one OS thread per replica, channel links, wall-clock
//!   ticks, heartbeat-based Ω;
//! * [`NetEngine`] — the socket deployment of [`crate::net`]: each replica
//!   an independent node speaking the length-prefixed binary frame format
//!   over loopback TCP, heartbeats on the same connections, the facade
//!   attached over per-node control connections.
//!
//! Engine choice is configuration, not code: the cross-engine conformance
//! suite drives the *same* workload through the same facade on all engines
//! and checks that the replicas converge to byte-identical state-machine
//! snapshots, under both consistency levels.
//!
//! Time units are engine-relative: the simulator interprets facade times as
//! virtual ticks, the thread and net engines map each facade tick to
//! [`ThreadEngine::tick`] / [`NetEngine::tick`] of wall-clock (1 ms by
//! default).

use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use ec_core::etob_omega::{EtobConfig, EtobOmega};
use ec_core::tob_consensus::{ConsensusTob, ConsensusTobConfig};
use ec_core::types::{AppMessage, Compactable, EventualTotalOrderBroadcast, Instrumented};
use ec_detectors::omega::OmegaOracle;
use ec_detectors::scripted::{LieWindow, OverlayFd};
use ec_detectors::sigma::SigmaOracle;
use ec_detectors::PairFd;
use ec_runtime::{sleep_ms, Runtime, RuntimeConfig, Stopwatch};
use ec_sim::{
    FailureDetector, FailurePattern, Metrics, NetworkModel, OutputHistory, ProcessId, ProcessSet,
    RecoveryPolicy, Time, World, WorldBuilder,
};
use ec_telemetry::{Recorder, TelemetryReport, TimeSource, FLIGHT_CAPACITY};

use crate::cluster::Consistency;
use crate::durable::DurableOptions;
use crate::net::codec::WireCodec;
use crate::net::node::{NetCluster, NetFinal};
use crate::replica::{Replica, ReplicaCommand, ReplicaOutput};
use crate::state_machine::StateMachine;

/// What a [`crate::cluster::ClusterBuilder`] asks an engine to deploy: the
/// group size, the consistency level, and the broadcast-layer configurations
/// (the one matching the consistency level is used).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeployPlan {
    /// Number of replicas in the group.
    pub replicas: usize,
    /// Consistency level, selecting the broadcast layer (and with it the
    /// failure detector the deployment must supply).
    pub consistency: Consistency,
    /// Algorithm 5 configuration, used at [`Consistency::Eventual`].
    pub etob: EtobConfig,
    /// Quorum-sequencer configuration, used at [`Consistency::Strong`].
    pub tob: ConsensusTobConfig,
    /// Durability options; `Some` makes every replica persist under
    /// `durable.dir/<replica index>/` and recover from it on (re)start.
    pub durable: Option<DurableOptions>,
}

/// Builds one replica for a deployment, durable when the plan says so. The
/// broadcast layer gets its telemetry recorder attached *before* the replica
/// wraps it, so durable recovery at `on_start` is already observed.
fn make_replica<S, B>(
    p: ProcessId,
    mut broadcast: B,
    durable: &Option<DurableOptions>,
    source: &TimeSource,
) -> Replica<S, B>
where
    S: StateMachine,
    B: EventualTotalOrderBroadcast + Compactable + Instrumented,
{
    broadcast.attach_recorder(Recorder::new(
        p.index() as u32,
        source.clone(),
        FLIGHT_CAPACITY,
    ));
    match durable {
        Some(options) => Replica::durable(broadcast, options.for_replica(p.index())),
        None => Replica::new(broadcast),
    }
}

/// The shared-epoch external clock of one real-time deployment: a single
/// stopwatch started at deploy time, copied into every replica's recorder.
fn wall_clock_source() -> TimeSource {
    TimeSource::External(Arc::new(Stopwatch::start()))
}

/// A deployment target for a replica group: turns a [`DeployPlan`] into a
/// running [`EngineDeployment`] the [`crate::cluster::Cluster`] facade can
/// drive uniformly.
pub trait Engine {
    /// Deploys `plan.replicas` replicas of state machine `S` at
    /// `plan.consistency`.
    fn deploy<S>(&self, plan: &DeployPlan) -> EngineDeployment<S>
    where
        S: StateMachine + Send + 'static;
}

/// Which engine a deployment runs on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// Deterministic simulation (`ec-sim`).
    Sim,
    /// Thread-per-process real-time runtime (`ec-runtime`).
    Thread,
    /// Socket deployment: node-per-process over loopback TCP
    /// ([`crate::net`]).
    Net,
}

impl fmt::Display for EngineKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineKind::Sim => write!(f, "sim"),
            EngineKind::Thread => write!(f, "thread"),
            EngineKind::Net => write!(f, "net"),
        }
    }
}

// ---------------------------------------------------------------------------
// SimEngine
// ---------------------------------------------------------------------------

/// The deterministic simulation engine: deploys replica groups as
/// [`World`]s, with Ω (and Σ, at [`Consistency::Strong`]) supplied by
/// scripted oracles over the configured [`FailurePattern`].
///
/// Everything scenario-shaped lives here: the network model (including
/// scripted partitions and link-fault windows), the crash pattern (including
/// crash–recovery windows and the rejoin [`RecoveryPolicy`]), the seed,
/// when Ω stabilizes, and scripted Ω lie windows. Runs are bit-reproducible
/// for a fixed configuration.
#[derive(Clone, Debug)]
pub struct SimEngine {
    network: NetworkModel,
    failures: Option<FailurePattern>,
    seed: u64,
    omega_stabilizes_at: Option<u64>,
    omega_lies: Vec<LieWindow<ProcessId>>,
    recovery: RecoveryPolicy,
}

impl Default for SimEngine {
    fn default() -> Self {
        SimEngine {
            network: NetworkModel::fixed_delay(2),
            failures: None,
            seed: 7,
            omega_stabilizes_at: None,
            omega_lies: Vec::new(),
            recovery: RecoveryPolicy::default(),
        }
    }
}

impl SimEngine {
    /// An engine with a 2-tick fixed-delay network, no failures, seed 7 and
    /// Ω stable from the start.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the network model (e.g. to script a partition).
    pub fn network(mut self, network: NetworkModel) -> Self {
        self.network = network;
        self
    }

    /// Sets the failure pattern. Defaults to no failures; the pattern must
    /// cover exactly the number of replicas later deployed on this engine.
    pub fn failures(mut self, failures: FailurePattern) -> Self {
        self.failures = Some(failures);
        self
    }

    /// Sets the seed of the deterministic random source for link delays.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Makes the Ω oracle stabilize only at time `t` (before that, every
    /// process trusts itself). Default: stable from the start.
    pub fn omega_stabilizes_at(mut self, t: u64) -> Self {
        self.omega_stabilizes_at = Some(t);
        self
    }

    /// Scripts an Ω lie: during `[from, until)`, the `observers` trust
    /// `leader` instead of the oracle's honest output. The window must be
    /// finite, so the lied-at Ω still stabilizes — Algorithm 5 then absorbs
    /// the lie (delivered sequences may diverge during the window and
    /// reconverge after it). Note the quorum sequencer's documented scope:
    /// it handles leader *changes*, not ballot-based dueling-leader
    /// recovery, so chaos scenarios script Ω lies only at
    /// [`Consistency::Eventual`].
    pub fn omega_lie(
        mut self,
        from: u64,
        until: u64,
        observers: ProcessSet,
        leader: ProcessId,
    ) -> Self {
        assert!(from < until, "lie window must be non-empty and finite");
        self.omega_lies.push(LieWindow {
            from: Time::new(from),
            until: Time::new(until),
            observers,
            value: leader,
        });
        self
    }

    /// Sets what a replica rejoining after a scripted crash–recovery window
    /// resumes with (defaults to [`RecoveryPolicy::RetainState`]).
    pub fn recovery(mut self, policy: RecoveryPolicy) -> Self {
        self.recovery = policy;
        self
    }

    fn pattern(&self, n: usize) -> FailurePattern {
        let failures = self
            .failures
            .clone()
            .unwrap_or_else(|| FailurePattern::no_failures(n));
        assert_eq!(
            failures.n(),
            n,
            "failure pattern must cover exactly the replicas of the cluster"
        );
        failures
    }

    fn omega(&self, failures: &FailurePattern) -> OverlayFd<OmegaOracle> {
        let oracle = match self.omega_stabilizes_at {
            Some(t) => OmegaOracle::stabilizing_at(failures.clone(), Time::new(t)),
            None => OmegaOracle::stable_from_start(failures.clone()),
        };
        let mut fd = OverlayFd::new(oracle);
        for lie in &self.omega_lies {
            fd = fd.with_lie(lie.from, lie.until, lie.observers.clone(), lie.value);
        }
        fd
    }
}

impl Engine for SimEngine {
    fn deploy<S>(&self, plan: &DeployPlan) -> EngineDeployment<S>
    where
        S: StateMachine + Send + 'static,
    {
        let n = plan.replicas;
        let failures = self.pattern(n);
        let omega = self.omega(&failures);
        match plan.consistency {
            Consistency::Eventual => {
                let etob = plan.etob;
                let durable = plan.durable.clone();
                let world = WorldBuilder::new(n)
                    .network(self.network.clone())
                    .failures(failures)
                    .seed(self.seed)
                    .recovery_policy(self.recovery)
                    .build_with(
                        move |p| {
                            make_replica(p, EtobOmega::new(p, etob), &durable, &TimeSource::Logical)
                        },
                        omega,
                    );
                EngineDeployment::SimEventual(Box::new(world))
            }
            Consistency::Strong => {
                let fd = PairFd::new(omega, SigmaOracle::majority(failures.clone()));
                let tob = plan.tob;
                let durable = plan.durable.clone();
                let world = WorldBuilder::new(n)
                    .network(self.network.clone())
                    .failures(failures)
                    .seed(self.seed)
                    .recovery_policy(self.recovery)
                    .build_with(
                        move |p| {
                            make_replica(
                                p,
                                ConsensusTob::new(p, tob),
                                &durable,
                                &TimeSource::Logical,
                            )
                        },
                        fd,
                    );
                EngineDeployment::SimStrong(Box::new(world))
            }
        }
    }
}

// ---------------------------------------------------------------------------
// ThreadEngine
// ---------------------------------------------------------------------------

/// The real-time engine: deploys replica groups on the thread-per-process
/// [`Runtime`], with Ω supplied by per-process heartbeat modules.
///
/// At [`Consistency::Strong`] the Σ component is the static full-membership
/// quorum derived alongside the heartbeat leader: sound while no process
/// crashes (any two copies intersect and contain only correct processes),
/// but a crash makes the quorum permanently unreachable — the deployment
/// stops delivering, which is precisely the availability price of strong
/// consistency the paper quantifies. Use [`Consistency::Eventual`] for
/// crash-tolerant thread deployments.
#[derive(Clone, Debug)]
pub struct ThreadEngine {
    config: RuntimeConfig,
    tick: Duration,
}

impl Default for ThreadEngine {
    fn default() -> Self {
        ThreadEngine {
            config: RuntimeConfig::default(),
            tick: Duration::from_millis(1),
        }
    }
}

impl ThreadEngine {
    /// An engine with the default [`RuntimeConfig`] and 1 ms per facade
    /// tick.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the runtime configuration (timer tick, heartbeat periods).
    pub fn runtime_config(mut self, config: RuntimeConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets how much wall-clock time one facade tick corresponds to.
    /// Facade calls like `run_until(t)` sleep until `t * tick` of wall time
    /// has elapsed since deployment.
    pub fn tick(mut self, tick: Duration) -> Self {
        self.tick = tick;
        self
    }

    fn tick_ms(&self) -> u64 {
        (self.tick.as_millis() as u64).max(1)
    }
}

impl Engine for ThreadEngine {
    fn deploy<S>(&self, plan: &DeployPlan) -> EngineDeployment<S>
    where
        S: StateMachine + Send + 'static,
    {
        match plan.consistency {
            Consistency::Eventual => {
                let etob = plan.etob;
                let durable = plan.durable.clone();
                let clock = wall_clock_source();
                let runtime = Runtime::spawn(plan.replicas, self.config, move |p| {
                    make_replica(p, EtobOmega::new(p, etob), &durable, &clock)
                });
                EngineDeployment::ThreadEventual(ThreadDeployment::new(
                    runtime,
                    self.tick_ms(),
                    plan.replicas,
                ))
            }
            Consistency::Strong => {
                let tob = plan.tob;
                let durable = plan.durable.clone();
                let clock = wall_clock_source();
                let runtime = Runtime::spawn_with_fd(
                    plan.replicas,
                    self.config,
                    move |p| make_replica(p, ConsensusTob::new(p, tob), &durable, &clock),
                    |leader, n| (leader, ProcessSet::all(n)),
                );
                EngineDeployment::ThreadStrong(ThreadDeployment::new(
                    runtime,
                    self.tick_ms(),
                    plan.replicas,
                ))
            }
        }
    }
}

/// A replica group running on the thread runtime, with facade times paced
/// against the wall clock.
pub struct ThreadDeployment<S, B>
where
    S: StateMachine + Send + 'static,
    B: EventualTotalOrderBroadcast + Compactable + Instrumented,
{
    runtime: Runtime<Replica<S, B>>,
    tick_ms: u64,
    n: usize,
}

impl<S, B> fmt::Debug for ThreadDeployment<S, B>
where
    S: StateMachine + Send + 'static,
    B: EventualTotalOrderBroadcast + Compactable + Instrumented,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ThreadDeployment")
            .field("n", &self.n)
            .field("tick_ms", &self.tick_ms)
            .finish()
    }
}

impl<S, B> ThreadDeployment<S, B>
where
    S: StateMachine + Send + 'static,
    B: EventualTotalOrderBroadcast + Compactable + Instrumented + Send + 'static,
    B::Msg: Send,
{
    fn new(runtime: Runtime<Replica<S, B>>, tick_ms: u64, n: usize) -> Self {
        ThreadDeployment {
            runtime,
            tick_ms,
            n,
        }
    }

    /// Sleeps until `t` facade ticks of wall-clock time have elapsed since
    /// deployment (no-op if that moment has already passed).
    fn pace_to(&self, t: u64) {
        let target_ms = t.saturating_mul(self.tick_ms);
        let now_ms = self.runtime.elapsed_ms();
        if now_ms < target_ms {
            // analysis:allow(determinism::wall-clock, reason = "ThreadEngine paces facade ticks against real time by design; the deterministic SimEngine never reaches this path")
            std::thread::sleep(Duration::from_millis(target_ms - now_ms));
        }
    }

    fn latest_output(&self, p: ProcessId) -> Option<ReplicaOutput> {
        self.runtime.latest_output_of(p)
    }

    fn output_history(&self) -> OutputHistory<ReplicaOutput> {
        let mut history = OutputHistory::new(self.n);
        for (p, ms, out) in self.runtime.outputs_so_far() {
            history.record(p, Time::new(ms / self.tick_ms), out);
        }
        history
    }
}

// ---------------------------------------------------------------------------
// NetEngine
// ---------------------------------------------------------------------------

/// The socket engine: deploys replica groups as independent nodes joined by
/// loopback TCP connections, every message crossing a real socket in the
/// [`crate::net::codec`] frame format.
///
/// Operationally a [`ThreadEngine`] sibling — wall-clock ticks, heartbeat
/// Ω, same Σ caveat at [`Consistency::Strong`] (a crash makes the static
/// full-membership quorum permanently unreachable) — but with the in-memory
/// channels replaced by the real wire: length-prefixed binary frames,
/// per-peer connections with reconnect, and a malformed-input counter
/// ([`crate::cluster::Cluster::malformed_frames`]) fed by every connection
/// reader. Unlike the other engines it also supports restarting a crashed
/// replica ([`crate::cluster::Cluster::restart`]): the fresh incarnation
/// rejoins behind the same address and is re-filled by the broadcast
/// layer's anti-entropy.
#[derive(Clone, Debug)]
pub struct NetEngine {
    config: RuntimeConfig,
    tick: Duration,
}

impl Default for NetEngine {
    fn default() -> Self {
        NetEngine {
            config: RuntimeConfig::default(),
            tick: Duration::from_millis(1),
        }
    }
}

impl NetEngine {
    /// An engine with the default [`RuntimeConfig`] and 1 ms per facade
    /// tick.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the runtime configuration (timer tick, heartbeat periods).
    pub fn runtime_config(mut self, config: RuntimeConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets how much wall-clock time one facade tick corresponds to.
    pub fn tick(mut self, tick: Duration) -> Self {
        self.tick = tick;
        self
    }

    fn tick_ms(&self) -> u64 {
        (self.tick.as_millis() as u64).max(1)
    }
}

impl Engine for NetEngine {
    fn deploy<S>(&self, plan: &DeployPlan) -> EngineDeployment<S>
    where
        S: StateMachine + Send + 'static,
    {
        match plan.consistency {
            Consistency::Eventual => {
                let etob = plan.etob;
                let durable = plan.durable.clone();
                let clock = wall_clock_source();
                let cluster = NetCluster::launch(
                    plan.replicas,
                    self.config,
                    move |p| make_replica(p, EtobOmega::new(p, etob), &durable, &clock),
                    |leader, _n| leader,
                );
                EngineDeployment::NetEventual(NetDeployment::attach(
                    cluster,
                    self.tick_ms(),
                    plan.replicas,
                ))
            }
            Consistency::Strong => {
                let tob = plan.tob;
                let durable = plan.durable.clone();
                let clock = wall_clock_source();
                let cluster = NetCluster::launch(
                    plan.replicas,
                    self.config,
                    move |p| make_replica(p, ConsensusTob::new(p, tob), &durable, &clock),
                    |leader, n| (leader, ProcessSet::all(n)),
                );
                EngineDeployment::NetStrong(NetDeployment::attach(
                    cluster,
                    self.tick_ms(),
                    plan.replicas,
                ))
            }
        }
    }
}

/// A replica group running as socket nodes, with facade times paced against
/// the wall clock.
pub struct NetDeployment<S, B>
where
    S: StateMachine + Send + 'static,
    B: EventualTotalOrderBroadcast + Compactable + Instrumented + Send + 'static,
    B::Msg: WireCodec + Send,
{
    cluster: NetCluster<S, B>,
    tick_ms: u64,
    n: usize,
}

impl<S, B> fmt::Debug for NetDeployment<S, B>
where
    S: StateMachine + Send + 'static,
    B: EventualTotalOrderBroadcast + Compactable + Instrumented + Send + 'static,
    B::Msg: WireCodec + Send,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NetDeployment")
            .field("n", &self.n)
            .field("tick_ms", &self.tick_ms)
            .finish()
    }
}

impl<S, B> NetDeployment<S, B>
where
    S: StateMachine + Send + 'static,
    B: EventualTotalOrderBroadcast + Compactable + Instrumented + Send + 'static,
    B::Msg: WireCodec + Send,
{
    fn attach(cluster: NetCluster<S, B>, tick_ms: u64, n: usize) -> Self {
        NetDeployment {
            cluster,
            tick_ms,
            n,
        }
    }

    /// Sleeps until `t` facade ticks of wall-clock time have elapsed since
    /// deployment (no-op if that moment has already passed).
    fn pace_to(&self, t: u64) {
        let target_ms = t.saturating_mul(self.tick_ms);
        loop {
            let now_ms = self.cluster.elapsed_ms();
            if now_ms >= target_ms {
                return;
            }
            sleep_ms((target_ms - now_ms).min(20));
        }
    }

    fn latest_output(&self, p: ProcessId) -> Option<ReplicaOutput> {
        self.cluster.latest_output_of(p)
    }

    fn output_history(&self) -> OutputHistory<ReplicaOutput> {
        let mut history = OutputHistory::new(self.n);
        for (p, ms, out) in self.cluster.outputs_so_far() {
            history.record(p, Time::new(ms / self.tick_ms), out);
        }
        history
    }
}

// ---------------------------------------------------------------------------
// The uniform deployment handle
// ---------------------------------------------------------------------------

/// The failure detector of simulated strong deployments: Ω behind a
/// scripted lie overlay, paired with the quorum oracle Σ.
pub type SimStrongFd = PairFd<OverlayFd<OmegaOracle>, SigmaOracle>;

/// A running replica group behind the uniform driving interface the
/// [`crate::cluster::Cluster`] facade uses. One variant per (engine,
/// consistency) combination; the variant is selected by
/// [`Engine::deploy`] and never changes afterwards.
#[derive(Debug)]
pub enum EngineDeployment<S>
where
    S: StateMachine + Send + 'static,
{
    /// Simulated Algorithm 5 group (Ω oracle behind a lie overlay).
    SimEventual(Box<World<Replica<S, EtobOmega>, OverlayFd<OmegaOracle>>>),
    /// Simulated quorum-sequencer group (Ω + Σ oracles; Ω behind a lie
    /// overlay).
    SimStrong(Box<World<Replica<S, ConsensusTob>, SimStrongFd>>),
    /// Threaded Algorithm 5 group (heartbeat Ω).
    ThreadEventual(ThreadDeployment<S, EtobOmega>),
    /// Threaded quorum-sequencer group (heartbeat Ω + static quorum Σ).
    ThreadStrong(ThreadDeployment<S, ConsensusTob>),
    /// Socket-node Algorithm 5 group (heartbeat Ω over TCP).
    NetEventual(NetDeployment<S, EtobOmega>),
    /// Socket-node quorum-sequencer group (heartbeat Ω + static quorum Σ
    /// over TCP).
    NetStrong(NetDeployment<S, ConsensusTob>),
}

/// Everything a deployment can say about itself once it has been stopped:
/// per-replica applied counts, canonical snapshots, typed final states, the
/// full output history, message counters, the correct-process set, and the
/// number of `update` broadcasts (Algorithm 5 only; 0 otherwise).
pub struct EngineFinal<S> {
    /// Commands applied, per replica.
    pub applied: Vec<usize>,
    /// Canonical state-machine snapshot, per replica.
    pub snapshots: Vec<Vec<u8>>,
    /// Typed final state machine, per replica (always available at finish).
    pub states: Vec<Option<S>>,
    /// Timed output history of the whole run, in facade ticks.
    pub history: OutputHistory<ReplicaOutput>,
    /// Message counters of the run.
    pub metrics: Metrics,
    /// Processes that were correct for the whole run.
    pub correct: ProcessSet,
    /// `update` broadcasts sent by the Algorithm 5 layers (0 for strong
    /// deployments, which have no batching amortization to report).
    pub updates_sent: u64,
    /// Merged latency summary of all replicas (submit→deliver,
    /// promote→stable, stability lag).
    pub telemetry: TelemetryReport,
    /// Per-replica flight-recorder traces: the retained lifecycle events of
    /// each replica, oldest first (plus, on the simulator, the world-level
    /// crash/recover events of that replica).
    pub flight: Vec<Vec<ec_telemetry::Event>>,
}

impl<S: fmt::Debug> fmt::Debug for EngineFinal<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EngineFinal")
            .field("applied", &self.applied)
            .field("correct", &self.correct)
            .field("updates_sent", &self.updates_sent)
            .finish_non_exhaustive()
    }
}

/// Applies polymorphic code to whichever variant is live: `$world` arms see
/// a `&(mut) World<Replica<S, _>, _>`, `$thread` arms a `ThreadDeployment`,
/// `$net` arms a `NetDeployment`.
macro_rules! by_engine {
    ($self:expr, $world:ident => $sim:expr, $thread:ident => $th:expr, $net:ident => $nt:expr) => {
        match $self {
            EngineDeployment::SimEventual($world) => $sim,
            EngineDeployment::SimStrong($world) => $sim,
            EngineDeployment::ThreadEventual($thread) => $th,
            EngineDeployment::ThreadStrong($thread) => $th,
            EngineDeployment::NetEventual($net) => $nt,
            EngineDeployment::NetStrong($net) => $nt,
        }
    };
}

fn sim_correct<A, D>(world: &World<A, D>) -> ProcessSet
where
    A: ec_sim::Algorithm,
    D: FailureDetector<Output = A::Fd>,
{
    world.failures().correct()
}

/// Merges the recorders of `n` replicas (some possibly crashed or
/// uninstrumented) into one report plus per-replica flight traces.
fn harvest_telemetry<'a>(
    recorders: impl Iterator<Item = Option<&'a Recorder>>,
) -> (TelemetryReport, Vec<Vec<ec_telemetry::Event>>) {
    let mut telemetry = TelemetryReport::default();
    let flight = recorders
        .map(|recorder| match recorder {
            Some(r) => {
                telemetry.merge(&r.report());
                r.events()
            }
            None => Vec::new(),
        })
        .collect();
    (telemetry, flight)
}

/// Live sim-side telemetry: merged recorder reports of every replica.
fn sim_telemetry<S, B, D>(world: &World<Replica<S, B>, D>) -> TelemetryReport
where
    S: StateMachine,
    B: EventualTotalOrderBroadcast + Compactable + Instrumented,
    D: FailureDetector<Output = B::Fd>,
{
    let mut telemetry = TelemetryReport::default();
    for p in world.process_ids() {
        if let Some(r) = world.algorithm(p).broadcast_layer().recorder() {
            telemetry.merge(&r.report());
        }
    }
    telemetry
}

/// Live sim-side flight traces: per-replica recorder events plus the
/// world's crash/recover events routed to the affected replica.
fn sim_flight<S, B, D>(world: &World<Replica<S, B>, D>) -> Vec<Vec<ec_telemetry::Event>>
where
    S: StateMachine,
    B: EventualTotalOrderBroadcast + Compactable + Instrumented,
    D: FailureDetector<Output = B::Fd>,
{
    let mut flight: Vec<Vec<ec_telemetry::Event>> = world
        .process_ids()
        .map(|p| {
            world
                .algorithm(p)
                .broadcast_layer()
                .recorder()
                .map(Recorder::events)
                .unwrap_or_default()
        })
        .collect();
    for event in world.fault_events() {
        if let Some(slot) = flight.get_mut(event.origin as usize) {
            slot.push(event);
        }
    }
    flight
}

impl<S> EngineDeployment<S>
where
    S: StateMachine + Send + 'static,
{
    /// Which engine this deployment runs on.
    pub fn kind(&self) -> EngineKind {
        by_engine!(self, _w => EngineKind::Sim, _t => EngineKind::Thread, _n => EngineKind::Net)
    }

    /// Number of replicas.
    pub fn n(&self) -> usize {
        by_engine!(self, w => w.n(), t => t.n, d => d.n)
    }

    /// Submits a command to replica `entry` at facade time `at`. The
    /// simulator schedules it; the thread engine sleeps until the wall
    /// clock reaches `at` and then submits, so callers should submit in
    /// non-decreasing time order.
    pub fn submit(&mut self, entry: ProcessId, command: ReplicaCommand, at: u64) {
        by_engine!(self,
            w => w.schedule_input(entry, command, at),
            t => { t.pace_to(at); t.runtime.submit(entry, command); },
            d => { d.pace_to(at); d.cluster.submit(entry, command); })
    }

    /// Advances the deployment to facade time `t` (virtual time on the
    /// simulator, paced wall-clock time on the thread engine).
    pub fn run_until(&mut self, t: u64) {
        by_engine!(self, w => w.run_until(t), t_ => t_.pace_to(t), d => d.pace_to(t))
    }

    /// Commands applied by replica `p` so far.
    pub fn applied(&self, p: ProcessId) -> usize {
        by_engine!(self,
            w => w.algorithm(p).applied(),
            t => t.latest_output(p).map(|o| o.applied).unwrap_or(0),
            d => d.latest_output(p).map(|o| o.applied).unwrap_or(0))
    }

    /// Commands replica `p` had applied at facade time `t` (from the output
    /// history — how the partition experiments probe availability).
    pub fn applied_at(&self, p: ProcessId, t: u64) -> usize {
        let history = self.output_history();
        history
            .value_at(p, Time::new(t))
            .map(|o| o.applied)
            .unwrap_or(0)
    }

    /// The canonical snapshot of replica `p`'s state machine.
    pub fn snapshot(&self, p: ProcessId) -> Vec<u8> {
        by_engine!(self,
            w => w.algorithm(p).state().snapshot(),
            t => t.latest_output(p).map(|o| o.snapshot).unwrap_or_else(|| S::default().snapshot()),
            d => d.latest_output(p).map(|o| o.snapshot).unwrap_or_else(|| S::default().snapshot()))
    }

    /// A typed copy of replica `p`'s state machine. Direct on the
    /// simulator; reconstructed from the latest emitted snapshot on the
    /// thread engine (`None` if `S` does not support
    /// [`StateMachine::from_snapshot`]).
    pub fn state(&self, p: ProcessId) -> Option<S> {
        by_engine!(self,
        w => Some(w.algorithm(p).state().clone()),
        t => match t.latest_output(p) {
            Some(out) => S::from_snapshot(&out.snapshot),
            None => Some(S::default()),
        },
        d => match d.latest_output(p) {
            Some(out) => S::from_snapshot(&out.snapshot),
            None => Some(S::default()),
        })
    }

    /// The stable delivered sequence of replica `p`'s broadcast layer.
    /// Available live on the simulator only (`None` on the thread and net
    /// engines, whose replicas are observable only through their outputs
    /// until [`EngineDeployment::finish`]).
    pub fn delivered(&self, p: ProcessId) -> Option<Vec<AppMessage>> {
        match self {
            EngineDeployment::SimEventual(w) => {
                Some(w.algorithm(p).broadcast_layer().delivered().to_vec())
            }
            EngineDeployment::SimStrong(w) => {
                Some(w.algorithm(p).broadcast_layer().delivered().to_vec())
            }
            EngineDeployment::ThreadEventual(_)
            | EngineDeployment::ThreadStrong(_)
            | EngineDeployment::NetEventual(_)
            | EngineDeployment::NetStrong(_) => None,
        }
    }

    /// Crashes replica `p` if the engine supports dynamic crashes. Returns
    /// `true` on the thread and net engines; `false` on the simulator,
    /// where crashes are scripted up front via [`SimEngine::failures`].
    pub fn crash(&mut self, p: ProcessId) -> bool {
        by_engine!(self,
            _w => { let _ = p; false },
            t => { t.runtime.crash(p); true },
            d => { d.cluster.crash(p); true })
    }

    /// Restarts a crashed replica as a fresh incarnation, if the engine
    /// supports it. Only the net engine does: the new node rejoins behind
    /// the crashed one's address with empty state and is re-filled by the
    /// broadcast layer's anti-entropy. Returns `false` everywhere else,
    /// and on the net engine if `p` is not down.
    pub fn restart(&mut self, p: ProcessId) -> bool {
        match self {
            EngineDeployment::NetEventual(d) => d.cluster.restart(p),
            EngineDeployment::NetStrong(d) => d.cluster.restart(p),
            _ => false,
        }
    }

    /// Frames rejected as malformed so far by the net engine's connection
    /// readers (0 on the other engines, which have no wire to corrupt).
    pub fn malformed_frames(&self) -> u64 {
        match self {
            EngineDeployment::NetEventual(d) => d.cluster.malformed_frames(),
            EngineDeployment::NetStrong(d) => d.cluster.malformed_frames(),
            _ => 0,
        }
    }

    /// The TCP listen address of replica `p`'s node, on the net engine
    /// (`None` elsewhere — only the net engine has sockets to dial). The
    /// adversarial codec tests use this to inject raw bytes.
    pub fn node_addr(&self, p: ProcessId) -> Option<std::net::SocketAddr> {
        match self {
            EngineDeployment::NetEventual(d) => d.cluster.addr(p),
            EngineDeployment::NetStrong(d) => d.cluster.addr(p),
            _ => None,
        }
    }

    /// Message counters so far (application messages only on the thread and
    /// net engines; the simulator has no separate heartbeat traffic to
    /// exclude).
    pub fn metrics(&self) -> Metrics {
        by_engine!(self, w => w.metrics().clone(), t => t.runtime.metrics(), d => d.cluster.metrics())
    }

    /// The timed output history so far, in facade ticks.
    pub fn output_history(&self) -> OutputHistory<ReplicaOutput> {
        by_engine!(self, w => w.trace().output_history(), t => t.output_history(), d => d.output_history())
    }

    /// The processes correct for the whole run: from the failure pattern on
    /// the simulator, everything minus `facade_crashed` on the thread and
    /// net engines.
    pub fn correct(&self, facade_crashed: &ProcessSet) -> ProcessSet {
        by_engine!(self,
            w => sim_correct(w),
            t => ProcessSet::all(t.n).difference(facade_crashed),
            d => ProcessSet::all(d.n).difference(facade_crashed))
    }

    /// Total `update` broadcasts of the Algorithm 5 layers so far (0 for
    /// strong deployments, and 0 live on the thread engine where replica
    /// internals are only harvested at finish).
    pub fn updates_sent(&self) -> u64 {
        match self {
            EngineDeployment::SimEventual(w) => w
                .process_ids()
                .map(|p| w.algorithm(p).broadcast_layer().updates_sent())
                .sum(),
            _ => 0,
        }
    }

    /// Total digest pulls (delta-sync update-gap repairs, see
    /// `EtobOmega::sync_pulls`) of the Algorithm 5 layers so far — each one
    /// is a wire-level gap that was detected and healed. 0 for strong
    /// deployments and live thread deployments.
    pub fn sync_pulls(&self) -> u64 {
        match self {
            EngineDeployment::SimEventual(w) => w
                .process_ids()
                .map(|p| w.algorithm(p).broadcast_layer().sync_pulls())
                .sum(),
            _ => 0,
        }
    }

    /// The merged latency summary so far. Live on the simulator (merged
    /// recorder reports of every replica); empty on the thread and net
    /// engines, whose replica internals are only harvested at
    /// [`EngineDeployment::finish`] — scrape a live net node with
    /// [`EngineDeployment::scrape`] instead.
    pub fn telemetry(&self) -> TelemetryReport {
        match self {
            EngineDeployment::SimEventual(w) => sim_telemetry(w),
            EngineDeployment::SimStrong(w) => sim_telemetry(w),
            _ => TelemetryReport::default(),
        }
    }

    /// The per-replica flight-recorder traces so far (simulator only; empty
    /// vectors on the real-time engines, which harvest at finish).
    pub fn flight_events(&self) -> Vec<Vec<ec_telemetry::Event>> {
        match self {
            EngineDeployment::SimEventual(w) => sim_flight(w),
            EngineDeployment::SimStrong(w) => sim_flight(w),
            _ => vec![Vec::new(); self.n()],
        }
    }

    /// Scrapes the live metrics exposition of replica `p`'s node over its
    /// socket (net engine only; `None` elsewhere, and on a node that is
    /// down).
    pub fn scrape(&self, p: ProcessId) -> Option<String> {
        match self {
            EngineDeployment::NetEventual(d) => d.cluster.scrape(p),
            EngineDeployment::NetStrong(d) => d.cluster.scrape(p),
            _ => None,
        }
    }

    /// Stops the deployment and harvests its final state. On the thread
    /// engine this joins every replica thread and reads the exact final
    /// automata; on the simulator it reads the live state.
    pub fn finish(self, facade_crashed: &ProcessSet) -> EngineFinal<S> {
        fn from_sim<S, B, D>(
            world: World<Replica<S, B>, D>,
            updates: impl Fn(&B) -> u64,
        ) -> EngineFinal<S>
        where
            S: StateMachine,
            B: EventualTotalOrderBroadcast + Compactable + Instrumented,
            D: FailureDetector<Output = B::Fd>,
        {
            let telemetry = sim_telemetry(&world);
            let flight = sim_flight(&world);
            EngineFinal {
                applied: world
                    .process_ids()
                    .map(|p| world.algorithm(p).applied())
                    .collect(),
                snapshots: world
                    .process_ids()
                    .map(|p| world.algorithm(p).state().snapshot())
                    .collect(),
                states: world
                    .process_ids()
                    .map(|p| Some(world.algorithm(p).state().clone()))
                    .collect(),
                history: world.trace().output_history(),
                metrics: world.metrics().clone(),
                correct: sim_correct(&world),
                updates_sent: world
                    .process_ids()
                    .map(|p| updates(world.algorithm(p).broadcast_layer()))
                    .collect::<Vec<u64>>()
                    .iter()
                    .sum(),
                telemetry,
                flight,
            }
        }

        fn from_thread<S, B>(
            deployment: ThreadDeployment<S, B>,
            facade_crashed: &ProcessSet,
            updates: impl Fn(&B) -> u64,
        ) -> EngineFinal<S>
        where
            S: StateMachine + Send + 'static,
            B: EventualTotalOrderBroadcast + Compactable + Instrumented + Send + 'static,
            B::Msg: Send,
        {
            let ThreadDeployment {
                runtime,
                tick_ms,
                n,
            } = deployment;
            let report = runtime.shutdown();
            let history = report.output_history(tick_ms);
            let finals = &report.final_states;
            let replica = |i: usize| finals.get(i).and_then(Option::as_ref);
            let (telemetry, flight) = harvest_telemetry(
                (0..n).map(|i| replica(i).and_then(|r| r.broadcast_layer().recorder())),
            );
            EngineFinal {
                applied: (0..n)
                    .map(|i| replica(i).map_or(0, Replica::applied))
                    .collect(),
                snapshots: (0..n)
                    .map(|i| {
                        replica(i)
                            .map(|r| r.state().snapshot())
                            .unwrap_or_else(|| S::default().snapshot())
                    })
                    .collect(),
                states: (0..n)
                    .map(|i| replica(i).map(|r| r.state().clone()))
                    .collect(),
                history,
                metrics: report.metrics.clone(),
                correct: ProcessSet::all(n).difference(facade_crashed),
                updates_sent: (0..n)
                    .filter_map(|i| replica(i).map(|r| updates(r.broadcast_layer())))
                    .sum(),
                telemetry,
                flight,
            }
        }

        fn from_net<S, B>(
            deployment: NetDeployment<S, B>,
            facade_crashed: &ProcessSet,
            updates: impl Fn(&B) -> u64,
        ) -> EngineFinal<S>
        where
            S: StateMachine + Send + 'static,
            B: EventualTotalOrderBroadcast + Compactable + Instrumented + Send + 'static,
            B::Msg: WireCodec + Send,
        {
            let NetDeployment {
                cluster,
                tick_ms,
                n,
            } = deployment;
            let NetFinal {
                final_states,
                outputs,
                metrics,
            } = cluster.shutdown();
            let mut history = OutputHistory::new(n);
            for (p, ms, out) in outputs {
                history.record(p, Time::new(ms / tick_ms), out);
            }
            let replica = |i: usize| final_states.get(i).and_then(Option::as_ref);
            let (telemetry, flight) = harvest_telemetry(
                (0..n).map(|i| replica(i).and_then(|r| r.broadcast_layer().recorder())),
            );
            EngineFinal {
                applied: (0..n)
                    .map(|i| replica(i).map_or(0, Replica::applied))
                    .collect(),
                snapshots: (0..n)
                    .map(|i| {
                        replica(i)
                            .map(|r| r.state().snapshot())
                            .unwrap_or_else(|| S::default().snapshot())
                    })
                    .collect(),
                states: (0..n)
                    .map(|i| replica(i).map(|r| r.state().clone()))
                    .collect(),
                history,
                metrics,
                correct: ProcessSet::all(n).difference(facade_crashed),
                updates_sent: (0..n)
                    .filter_map(|i| replica(i).map(|r| updates(r.broadcast_layer())))
                    .sum(),
                telemetry,
                flight,
            }
        }

        match self {
            EngineDeployment::SimEventual(w) => from_sim(*w, EtobOmega::updates_sent),
            EngineDeployment::SimStrong(w) => from_sim(*w, |_| 0),
            EngineDeployment::ThreadEventual(t) => {
                from_thread(t, facade_crashed, EtobOmega::updates_sent)
            }
            EngineDeployment::ThreadStrong(t) => from_thread(t, facade_crashed, |_| 0),
            EngineDeployment::NetEventual(d) => {
                from_net(d, facade_crashed, EtobOmega::updates_sent)
            }
            EngineDeployment::NetStrong(d) => from_net(d, facade_crashed, |_| 0),
        }
    }
}

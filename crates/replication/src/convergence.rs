//! Convergence metrics over replica output histories.
//!
//! Eventual consistency promises that replicas *eventually* agree; these
//! metrics quantify the "eventually": when did all correct replicas last
//! reach identical snapshots, how many distinct divergence episodes occurred,
//! and how much progress each replica had made at any point. Experiment E2
//! reports them side by side for the Ω-only replicated service and the
//! Ω + Σ baseline.

use ec_sim::{OutputHistory, ProcessId, ProcessSet, Time};

use crate::replica::ReplicaOutput;

/// A maximal period during which at least two correct replicas exposed
/// different snapshots.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Divergence {
    /// First time at which the snapshots differed.
    pub from: Time,
    /// First subsequent time at which all correct replicas agreed again
    /// (`None` if they never re-converged within the recorded history).
    pub until: Option<Time>,
}

/// Summary of a replicated run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConvergenceReport {
    /// The time from which all correct replicas exposed identical snapshots
    /// until the end of the history (`None` if they never converged).
    pub converged_at: Option<Time>,
    /// Divergence episodes, in order.
    pub divergences: Vec<Divergence>,
    /// Per-replica number of applied commands at the end of the history.
    pub final_applied: Vec<(ProcessId, usize)>,
}

impl ConvergenceReport {
    /// Builds the report from a replica output history and the set of
    /// correct processes.
    pub fn from_history(history: &OutputHistory<ReplicaOutput>, correct: &ProcessSet) -> Self {
        let mut times = history.output_times();
        times.dedup();
        let mut divergences: Vec<Divergence> = Vec::new();
        let mut open: Option<Time> = None;
        let mut last_state = true;
        for &t in &times {
            let agree = Self::agree_at(history, correct, t);
            if !agree && open.is_none() {
                open = Some(t);
            }
            if agree {
                if let Some(from) = open.take() {
                    divergences.push(Divergence {
                        from,
                        until: Some(t),
                    });
                }
            }
            last_state = agree;
        }
        if let Some(from) = open {
            divergences.push(Divergence { from, until: None });
        }
        // converged_at: the last time agreement was (re-)established, if the
        // history ends in agreement.
        let converged_at = if last_state {
            match divergences.last() {
                Some(Divergence { until: Some(t), .. }) => Some(*t),
                Some(Divergence { until: None, .. }) => None,
                None => times.first().copied().or(Some(Time::ZERO)),
            }
        } else {
            None
        };
        let final_applied = correct
            .iter()
            .map(|p| (p, history.last(p).map(|o| o.applied).unwrap_or(0)))
            .collect();
        ConvergenceReport {
            converged_at,
            divergences,
            final_applied,
        }
    }

    fn agree_at(history: &OutputHistory<ReplicaOutput>, correct: &ProcessSet, t: Time) -> bool {
        let mut snapshots = correct
            .iter()
            .map(|p| history.value_at(p, t).map(|o| o.snapshot.clone()));
        let Some(first) = snapshots.next() else {
            return true;
        };
        snapshots.all(|s| s == first)
    }

    /// Number of divergence episodes.
    pub fn divergence_count(&self) -> usize {
        self.divergences.len()
    }

    /// Returns `true` if the correct replicas agree at the end of the
    /// recorded history.
    pub fn is_converged(&self) -> bool {
        self.converged_at.is_some()
    }

    /// Total number of commands applied across correct replicas at the end.
    pub fn total_applied(&self) -> usize {
        self.final_applied.iter().map(|(_, a)| a).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn out(applied: usize, tag: u8) -> ReplicaOutput {
        ReplicaOutput {
            applied,
            snapshot: vec![tag],
        }
    }

    fn correct(n: usize) -> ProcessSet {
        ProcessSet::all(n)
    }

    #[test]
    fn identical_histories_are_converged_with_no_divergence() {
        let mut h = OutputHistory::new(2);
        h.record(ProcessId::new(0), Time::new(5), out(1, 1));
        h.record(ProcessId::new(1), Time::new(5), out(1, 1));
        let report = ConvergenceReport::from_history(&h, &correct(2));
        assert!(report.is_converged());
        assert_eq!(report.divergence_count(), 0);
        assert_eq!(report.total_applied(), 2);
    }

    #[test]
    fn temporary_divergence_is_reported_and_closed() {
        let mut h = OutputHistory::new(2);
        h.record(ProcessId::new(0), Time::new(5), out(1, 1));
        // p1 lags: at t=5 it has no output yet → divergence
        h.record(ProcessId::new(1), Time::new(20), out(1, 1));
        let report = ConvergenceReport::from_history(&h, &correct(2));
        assert!(report.is_converged());
        assert_eq!(report.divergence_count(), 1);
        assert_eq!(report.divergences[0].from, Time::new(5));
        assert_eq!(report.divergences[0].until, Some(Time::new(20)));
        assert_eq!(report.converged_at, Some(Time::new(20)));
    }

    #[test]
    fn unclosed_divergence_means_not_converged() {
        let mut h = OutputHistory::new(2);
        h.record(ProcessId::new(0), Time::new(5), out(1, 1));
        h.record(ProcessId::new(1), Time::new(10), out(1, 2));
        let report = ConvergenceReport::from_history(&h, &correct(2));
        assert!(!report.is_converged());
        assert_eq!(report.divergence_count(), 1);
        assert_eq!(report.divergences[0].until, None);
    }

    #[test]
    fn only_correct_processes_are_compared() {
        let mut h = OutputHistory::new(2);
        h.record(ProcessId::new(0), Time::new(5), out(1, 1));
        h.record(ProcessId::new(1), Time::new(10), out(9, 9));
        let only_p0: ProcessSet = [0].into_iter().collect();
        let report = ConvergenceReport::from_history(&h, &only_p0);
        assert!(report.is_converged());
        assert_eq!(report.final_applied, vec![(ProcessId::new(0), 1)]);
    }

    #[test]
    fn empty_history_is_trivially_converged() {
        let h: OutputHistory<ReplicaOutput> = OutputHistory::new(3);
        let report = ConvergenceReport::from_history(&h, &correct(3));
        assert!(report.is_converged());
        assert_eq!(report.total_applied(), 0);
    }
}

//! Horizontal scale: a sharded replicated service over independent replica
//! groups.
//!
//! The paper's motivating systems (Dynamo, PNUTS, Bigtable) scale
//! horizontally: the keyspace is hash-partitioned across many independent
//! replica groups, each internally replicated. This module provides that
//! layer on top of the [`Cluster`] facade:
//!
//! * [`Router`] — the pluggable key → shard mapping, with the FNV-1a
//!   [`HashRouter`] (the function [`shard_of`]) as the default;
//! * [`ShardedCluster`] — `shards` independent [`Cluster`]s of any state
//!   machine at any consistency level, on any engine. Client operations are
//!   routed to the owning shard and enter through a round-robin entry
//!   replica;
//! * [`ShardedKv`] — the key–value instantiation
//!   (`ShardedCluster<KvStore>`), with `put`/`del`/`get` conveniences and
//!   [`ec_core::workload::KvWorkload`] intake.
//!
//! Because shards are fully independent groups, each pays only the
//! two-communication-step stable-leader latency the paper proves for a
//! *single* group, regardless of cluster size — and a partition inside one
//! shard delays convergence of that shard only (experiment E10 and the
//! `tests/sharding.rs` suite demonstrate both properties). Combined with the
//! [`EtobConfig::batch`](ec_core::etob_omega::EtobConfig) flush knob, the
//! per-shard hot path scales with operations per flush rather than per
//! message (experiment E11).

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};

use ec_core::etob_omega::EtobConfig;
use ec_core::workload::{KvOp, KvWorkload};
use ec_sim::{Metrics, NetworkModel, ProcessId};

use crate::cluster::{Cluster, ClusterBuilder, Consistency};
pub use crate::cluster::{ClusterReport, ShardReport};
use crate::engine::{Engine, SimEngine};
use crate::state_machine::{KvStore, StateMachine};

/// Maps a key to the shard that owns it: FNV-1a over the key bytes, reduced
/// modulo the shard count. Deterministic and stable across runs *and
/// platforms* — the key → shard mapping is a wire-format guarantee, pinned
/// by known-answer tests, so routers, tests and clients always agree on
/// ownership.
///
/// # Panics
///
/// Panics if `shards == 0`.
///
/// # Example
///
/// ```
/// use ec_replication::shard::shard_of;
/// let s = shard_of("user:42", 8);
/// assert!(s < 8);
/// assert_eq!(s, shard_of("user:42", 8), "routing is deterministic");
/// ```
pub fn shard_of(key: &str, shards: usize) -> usize {
    assert!(shards > 0, "a cluster needs at least one shard");
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % shards as u64) as usize
}

/// A pluggable key → shard mapping. Implementations must be deterministic:
/// every client and every test must agree on which shard owns a key.
pub trait Router: fmt::Debug {
    /// The shard (in `0..shards`) owning `key`.
    fn route(&self, key: &str, shards: usize) -> usize;
}

/// The default router: FNV-1a hash partitioning via [`shard_of`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HashRouter;

impl Router for HashRouter {
    fn route(&self, key: &str, shards: usize) -> usize {
        shard_of(key, shards)
    }
}

/// Execution mode of a [`ShardedCluster`]: how many OS threads step the
/// shard worlds.
///
/// Shards are fully independent replica groups — they share no state, no
/// network and no randomness (shard `s` runs on `seed + s`) — so stepping
/// them on worker threads cannot change what any shard computes, only *when*
/// it is computed. Reports, snapshots and merged telemetry are aggregated on
/// the caller's thread in shard-index order, so every observable artifact is
/// byte-identical to [`Parallelism::Sequential`] (pinned by the conformance
/// test in `tests/sharding.rs`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Parallelism {
    /// Step every shard on the calling thread (the reference mode).
    #[default]
    Sequential,
    /// Step shards on up to this many scoped worker threads, shards
    /// assigned round-robin. A count of 0 or 1 behaves like
    /// [`Parallelism::Sequential`].
    Workers(usize),
}

impl Parallelism {
    /// Number of worker threads to actually spawn for `shards` shards.
    fn workers_for(self, shards: usize) -> usize {
        match self {
            Parallelism::Sequential => 1,
            Parallelism::Workers(w) => w.clamp(1, shards.max(1)),
        }
    }
}

/// Configuration of a [`ShardedCluster`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardConfig {
    /// Number of independent replica groups the keyspace is partitioned
    /// across.
    pub shards: usize,
    /// Replicas per shard (each shard is its own `n`-process group).
    pub replicas_per_shard: usize,
    /// ETOB configuration shared by all shards (promote period, eager
    /// promotion, and the batching flush interval).
    pub etob: EtobConfig,
    /// Network model shared by all shards (simulation engine); override a
    /// single shard's network (e.g. to script a partition) via
    /// [`ShardedClusterBuilder::shard_network`].
    pub network: NetworkModel,
    /// Base seed; shard `s` runs with `seed + s` so the shard worlds are
    /// deterministic but not lock-stepped copies of each other.
    pub seed: u64,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            shards: 4,
            replicas_per_shard: 3,
            etob: EtobConfig::default(),
            network: NetworkModel::fixed_delay(2),
            seed: 7,
        }
    }
}

/// Builder for a [`ShardedCluster`], allowing per-shard network overrides, a
/// custom [`Router`], a consistency level, and custom engines.
#[derive(Clone, Debug)]
pub struct ShardedClusterBuilder<S, R = HashRouter> {
    config: ShardConfig,
    consistency: Consistency,
    router: R,
    shard_networks: Vec<Option<NetworkModel>>,
    parallelism: Parallelism,
    _state: std::marker::PhantomData<fn() -> S>,
}

/// Builder alias for the key–value instantiation (kept as the name the
/// sharded-KV experiments and examples use).
pub type ShardedKvBuilder = ShardedClusterBuilder<KvStore>;

impl<S: StateMachine + Send + 'static> ShardedClusterBuilder<S> {
    /// Starts building a cluster from a base configuration, with the
    /// default FNV-1a [`HashRouter`].
    ///
    /// # Panics
    ///
    /// Panics if the configuration names zero shards or fewer than two
    /// replicas per shard (each shard is a group, and groups need `n ≥ 2`).
    pub fn new(config: ShardConfig) -> Self {
        assert!(config.shards > 0, "a cluster needs at least one shard");
        assert!(
            config.replicas_per_shard >= 2,
            "each shard runs a group of at least two replicas"
        );
        let shard_networks = vec![None; config.shards];
        ShardedClusterBuilder {
            config,
            consistency: Consistency::Eventual,
            router: HashRouter,
            shard_networks,
            parallelism: Parallelism::Sequential,
            _state: std::marker::PhantomData,
        }
    }
}

impl<S: StateMachine + Send + 'static, R: Router> ShardedClusterBuilder<S, R> {
    /// Replaces the router.
    pub fn router<R2: Router>(self, router: R2) -> ShardedClusterBuilder<S, R2> {
        ShardedClusterBuilder {
            config: self.config,
            consistency: self.consistency,
            router,
            shard_networks: self.shard_networks,
            parallelism: self.parallelism,
            _state: std::marker::PhantomData,
        }
    }

    /// Sets the execution mode: how many worker threads step the shard
    /// worlds in [`ShardedCluster::run_until`] /
    /// [`ShardedCluster::run_until_applied`] / [`ShardedCluster::finish`].
    /// Sequential by default. Parallel stepping never changes results —
    /// see [`Parallelism`].
    pub fn parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Sets the consistency level of every shard (eventual by default).
    pub fn consistency(mut self, consistency: Consistency) -> Self {
        self.consistency = consistency;
        self
    }

    /// Overrides the network model of one shard — the hook the partition
    /// experiments use to isolate replicas of a single shard while the rest
    /// of the cluster keeps its base network. Applies to the default
    /// simulation engines of [`ShardedClusterBuilder::build`].
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn shard_network(mut self, shard: usize, network: NetworkModel) -> Self {
        assert!(shard < self.config.shards, "no such shard: {shard}");
        self.shard_networks[shard] = Some(network);
        self
    }

    /// Builds the cluster on per-shard deterministic simulation engines
    /// (shard `s` seeded with `seed + s`, honoring
    /// [`ShardedClusterBuilder::shard_network`] overrides).
    pub fn build(mut self) -> ShardedCluster<S, R> {
        let config = self.config.clone();
        let networks = std::mem::replace(&mut self.shard_networks, vec![None; config.shards]);
        self.build_with(|s| {
            SimEngine::new()
                .network(
                    networks
                        .get(s)
                        .and_then(Clone::clone)
                        .unwrap_or_else(|| config.network.clone()),
                )
                .seed(config.seed + s as u64)
        })
    }

    /// Builds the cluster with one engine per shard produced by
    /// `make_engine` — how a sharded service is deployed on the thread
    /// runtime (or any custom [`Engine`]).
    ///
    /// # Panics
    ///
    /// Panics if [`ShardedClusterBuilder::shard_network`] overrides were
    /// set: those configure the default simulation engines of
    /// [`ShardedClusterBuilder::build`] and would be silently ignored here —
    /// bake per-shard differences into `make_engine` instead.
    pub fn build_with<E: Engine>(
        self,
        mut make_engine: impl FnMut(usize) -> E,
    ) -> ShardedCluster<S, R> {
        assert!(
            self.shard_networks.iter().all(Option::is_none),
            "shard_network overrides apply only to build(); configure custom engines directly"
        );
        let ShardedClusterBuilder {
            config,
            consistency,
            router,
            parallelism,
            ..
        } = self;
        let clusters = (0..config.shards)
            .map(|s| {
                ClusterBuilder::<S>::new(config.replicas_per_shard)
                    .consistency(consistency)
                    .etob(config.etob)
                    .deploy(&make_engine(s))
            })
            .collect();
        ShardedCluster {
            next_entry: vec![0; config.shards],
            config,
            router,
            clusters,
            parallelism,
        }
    }
}

/// A sharded replicated service: `shards` independent [`Cluster`]s behind a
/// [`Router`].
///
/// # Example
///
/// ```
/// use ec_replication::shard::{ShardConfig, ShardedKv};
///
/// let mut cluster = ShardedKv::new(ShardConfig::default());
/// cluster.put("alice", "1", 10);
/// cluster.put("bob", "2", 12);
/// cluster.run_until(2_000);
/// assert_eq!(cluster.get("alice").as_deref(), Some("1"));
/// assert_eq!(cluster.get("bob").as_deref(), Some("2"));
/// let report = cluster.report();
/// assert!(report.all_converged());
/// assert_eq!(report.total_ops_routed(), 2);
/// ```
#[derive(Debug)]
pub struct ShardedCluster<S, R = HashRouter>
where
    S: StateMachine + Send + 'static,
    R: Router,
{
    config: ShardConfig,
    router: R,
    clusters: Vec<Cluster<S>>,
    /// Round-robin entry replica per shard (simulating clients contacting
    /// different front-end replicas).
    next_entry: Vec<usize>,
    /// Execution mode for `run_until` / `run_until_applied` / `finish`.
    parallelism: Parallelism,
}

/// The sharded eventually consistent key–value service: the
/// [`ShardedCluster`] instantiation the KV experiments (E10/E11) use.
pub type ShardedKv = ShardedCluster<KvStore>;

impl ShardedKv {
    /// Builds a KV cluster with a uniform network across shards. Use
    /// [`ShardedKv::builder`] to override single shards.
    pub fn new(config: ShardConfig) -> Self {
        ShardedClusterBuilder::new(config).build()
    }

    /// Starts a builder (for per-shard network overrides, consistency or
    /// engine choice).
    pub fn builder(config: ShardConfig) -> ShardedKvBuilder {
        ShardedClusterBuilder::new(config)
    }
}

impl<S, R> ShardedCluster<S, R>
where
    S: StateMachine + Send + 'static,
    R: Router,
{
    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.config.shards
    }

    /// Replicas per shard.
    pub fn replicas_per_shard(&self) -> usize {
        self.config.replicas_per_shard
    }

    /// The shard owning `key`, per the configured [`Router`].
    pub fn shard_of_key(&self, key: &str) -> usize {
        self.router.route(key, self.config.shards)
    }

    /// The [`Cluster`] of one shard (for inspection in tests and
    /// experiments).
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn cluster(&self, shard: usize) -> &Cluster<S> {
        &self.clusters[shard]
    }

    /// Routes a raw state-machine command to the shard owning `key` at time
    /// `at`; returns the shard it was routed to. The entry replica is the
    /// client index modulo the shard size if given, else round-robin.
    pub fn submit_keyed(
        &mut self,
        key: &str,
        command: impl Into<crate::replica::ReplicaCommand>,
        at: u64,
        client: Option<usize>,
    ) -> usize {
        let shard = self.shard_of_key(key);
        let n = self.config.replicas_per_shard;
        let entry = match client {
            Some(c) => c % n,
            None => self.next_entry[shard],
        };
        // Fairness: the rotation pointer always moves past the replica just
        // used, explicit or not — otherwise interleaved explicit-entry
        // submissions leave the pointer parked and round-robin traffic
        // piles onto whichever replica it happens to point at.
        self.next_entry[shard] = (entry + 1) % n;
        self.clusters[shard].submit_at(ProcessId::new(entry), command, at);
        shard
    }

    /// Runs `step` over every shard, on the calling thread in sequential
    /// mode or on scoped worker threads (shards assigned round-robin)
    /// otherwise. Shards share nothing, so the schedule cannot change what
    /// any shard computes; a worker panic propagates to the caller.
    fn step_shards(&mut self, step: impl Fn(&mut Cluster<S>) + Sync) {
        let workers = self.parallelism.workers_for(self.clusters.len());
        if workers <= 1 {
            for cluster in &mut self.clusters {
                step(cluster);
            }
            return;
        }
        let mut buckets: Vec<Vec<&mut Cluster<S>>> = (0..workers).map(|_| Vec::new()).collect();
        for (s, cluster) in self.clusters.iter_mut().enumerate() {
            buckets[s % workers].push(cluster);
        }
        let step = &step;
        std::thread::scope(|scope| {
            for bucket in buckets {
                scope.spawn(move || {
                    for cluster in bucket {
                        step(cluster);
                    }
                });
            }
        });
    }

    /// Advances every shard to time `t` (shards are independent, so this is
    /// a per-shard run — concurrent under [`Parallelism::Workers`]).
    pub fn run_until(&mut self, t: u64) {
        self.step_shards(|cluster| cluster.run_until(t));
    }

    /// Advances every shard in small time steps until each correct replica
    /// of shard `s` has applied at least `targets[s]` commands, or facade
    /// time `max_t` is reached. Returns `true` if every shard reached its
    /// target — the uniform way to wait for cluster-wide convergence
    /// without guessing a horizon. Shards that already met their target are
    /// not stepped further.
    ///
    /// # Panics
    ///
    /// Panics if `targets` does not name one target per shard.
    pub fn run_until_applied(&mut self, targets: &[usize], max_t: u64) -> bool {
        assert_eq!(
            targets.len(),
            self.clusters.len(),
            "one applied-target per shard"
        );
        let workers = self.parallelism.workers_for(self.clusters.len());
        if workers <= 1 {
            let mut all = true;
            for (s, cluster) in self.clusters.iter_mut().enumerate() {
                all &= cluster.run_until_applied(targets[s], max_t);
            }
            return all;
        }
        let reached = AtomicBool::new(true);
        let mut buckets: Vec<Vec<(usize, &mut Cluster<S>)>> =
            (0..workers).map(|_| Vec::new()).collect();
        for (s, cluster) in self.clusters.iter_mut().enumerate() {
            buckets[s % workers].push((s, cluster));
        }
        let reached_ref = &reached;
        std::thread::scope(|scope| {
            for bucket in buckets {
                scope.spawn(move || {
                    for (s, cluster) in bucket {
                        if !cluster.run_until_applied(targets[s], max_t) {
                            reached_ref.store(false, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        reached.load(Ordering::Relaxed)
    }

    /// Per-replica applied-command counts of one shard.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn applied(&self, shard: usize) -> Vec<usize> {
        // analysis:allow(panic-safety::index, reason = "the shard number comes from the local caller, never from a peer, and the panic is the documented API contract; the telemetry recorder's same-named applied() event is what put this name on a message path")
        let cluster = &self.clusters[shard];
        cluster.replica_ids().map(|p| cluster.applied(p)).collect()
    }

    /// Operations routed to `shard` so far.
    pub fn ops_routed(&self, shard: usize) -> u64 {
        self.clusters[shard].submitted()
    }

    /// Aggregates the per-shard reports into a cluster-level report.
    pub fn report(&self) -> ClusterReport {
        Self::aggregate(self.clusters.iter().map(Cluster::report))
    }

    /// Stops every shard and aggregates the final per-shard reports (joins
    /// replica threads on thread engines). Under [`Parallelism::Workers`]
    /// the shards finish on worker threads, but reports are reassembled
    /// into shard-index order before aggregation, so the result is
    /// byte-identical to sequential mode.
    pub fn finish(self) -> ClusterReport {
        let workers = self.parallelism.workers_for(self.clusters.len());
        if workers <= 1 {
            return Self::aggregate(self.clusters.into_iter().map(Cluster::finish));
        }
        let shard_count = self.clusters.len();
        let mut buckets: Vec<Vec<(usize, Cluster<S>)>> = (0..workers).map(|_| Vec::new()).collect();
        for (s, cluster) in self.clusters.into_iter().enumerate() {
            buckets[s % workers].push((s, cluster));
        }
        let mut slots: Vec<Option<ClusterReport>> = (0..shard_count).map(|_| None).collect();
        std::thread::scope(|scope| {
            let handles: Vec<_> = buckets
                .into_iter()
                .map(|bucket| {
                    scope.spawn(move || {
                        bucket
                            .into_iter()
                            .map(|(s, cluster)| (s, cluster.finish()))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for handle in handles {
                match handle.join() {
                    Ok(reports) => {
                        for (s, report) in reports {
                            slots[s] = Some(report);
                        }
                    }
                    // a worker panicked: surface the original panic payload
                    // on the caller's thread instead of inventing a new one
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
        });
        Self::aggregate(slots.into_iter().flatten())
    }

    fn aggregate(reports: impl Iterator<Item = ClusterReport>) -> ClusterReport {
        let mut shards = Vec::new();
        let mut totals = Metrics::new(0);
        let mut engine = None;
        let mut consistency = None;
        for report in reports {
            totals.merge(&report.totals);
            engine.get_or_insert(report.engine);
            consistency.get_or_insert(report.consistency);
            for mut shard in report.shards {
                shard.shard = shards.len();
                shards.push(shard);
            }
        }
        ClusterReport {
            // analysis:allow(panic-safety::expect, reason = "aggregate only folds locally produced reports and ShardConfig guarantees at least one shard; no peer input reaches this path")
            engine: engine.expect("a sharded cluster has at least one shard"),
            // analysis:allow(panic-safety::expect, reason = "aggregate only folds locally produced reports and ShardConfig guarantees at least one shard; no peer input reaches this path")
            consistency: consistency.expect("a sharded cluster has at least one shard"),
            shards,
            totals,
        }
    }
}

impl<R: Router> ShardedCluster<KvStore, R> {
    /// Routes a `put key value` to the owning shard at time `at`; returns
    /// the shard it was routed to.
    pub fn put(&mut self, key: &str, value: &str, at: u64) -> usize {
        self.submit_keyed(key, KvStore::put(key, value), at, None)
    }

    /// Routes a `del key` to the owning shard at time `at`; returns the
    /// shard it was routed to.
    pub fn del(&mut self, key: &str, at: u64) -> usize {
        self.submit_keyed(key, KvStore::del(key), at, None)
    }

    /// Routes one operation of a [`KvWorkload`] client mix. The client index
    /// picks the entry replica inside the owning shard, so distinct clients
    /// exercise distinct front ends.
    pub fn submit(&mut self, op: &KvOp) -> usize {
        let command = match &op.value {
            Some(value) => KvStore::put(&op.key, value),
            None => KvStore::del(&op.key),
        };
        self.submit_keyed(&op.key, command, op.at, Some(op.client))
    }

    /// Routes a slice of operations in one pass: every operation is routed
    /// first, then each shard's batch is enqueued in submission order
    /// through one borrow of that shard's cluster. Equivalent to calling
    /// [`ShardedCluster::submit`] per operation (shards only ever observe
    /// their own sub-sequence, which is preserved), but the driver touches
    /// each shard once per batch instead of once per operation — the
    /// submission path stops being the bottleneck once the shards
    /// themselves step on worker threads. Returns the owning shard of each
    /// operation, in input order.
    pub fn submit_batch(&mut self, ops: &[KvOp]) -> Vec<usize> {
        let shards = self.config.shards;
        let n = self.config.replicas_per_shard;
        let mut routed = Vec::with_capacity(ops.len());
        let mut by_shard: Vec<Vec<&KvOp>> = vec![Vec::new(); shards];
        for op in ops {
            let s = self.router.route(&op.key, shards);
            routed.push(s);
            assert!(s < shards, "router returned shard {s} of {shards}");
            by_shard[s].push(op);
        }
        for (s, batch) in by_shard.into_iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            let cluster = &mut self.clusters[s];
            for op in batch {
                let command = match &op.value {
                    Some(value) => KvStore::put(&op.key, value),
                    None => KvStore::del(&op.key),
                };
                let entry = op.client % n;
                self.next_entry[s] = (entry + 1) % n;
                cluster.submit_at(ProcessId::new(entry), command, op.at);
            }
        }
        routed
    }

    /// Routes an entire client mix (one [`ShardedCluster::submit_batch`]
    /// pass).
    pub fn submit_workload(&mut self, workload: &KvWorkload) {
        self.submit_batch(workload.ops());
    }

    /// Reads `key` from replica 0 of the owning shard (a local, eventually
    /// consistent read, as in the Dynamo-style systems the paper cites).
    pub fn get(&self, key: &str) -> Option<String> {
        let shard = self.shard_of_key(key);
        self.clusters
            .get(shard)?
            .state(ProcessId::new(0))
            .and_then(|s| s.get(key).map(str::to_owned))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ec_core::workload::ZipfMix;
    use ec_sim::{PartitionSpec, ProcessSet, Time};

    #[test]
    fn router_is_deterministic_and_covers_all_shards() {
        let keys: Vec<String> = (0..200).map(|k| format!("key{k}")).collect();
        let shards = 8;
        let mut hits = vec![0usize; shards];
        for key in &keys {
            let s = shard_of(key, shards);
            assert_eq!(s, shard_of(key, shards));
            assert_eq!(s, HashRouter.route(key, shards));
            hits[s] += 1;
        }
        // FNV spreads 200 keys over 8 shards without leaving any empty
        assert!(hits.iter().all(|&h| h > 0), "hits = {hits:?}");
    }

    /// The key → shard mapping is a wire-format guarantee: clients persist
    /// and exchange shard assignments, so the FNV-1a reduction must never
    /// change across versions or platforms. Known-answer vectors, verified
    /// against an independent FNV-1a implementation.
    #[test]
    fn shard_of_matches_pinned_fnv1a_test_vectors() {
        // (key, shards, expected shard); FNV-1a 64-bit offset basis
        // 0xcbf29ce484222325, prime 0x100000001b3.
        let vectors: &[(&str, usize, usize)] = &[
            ("", 8, 5),        // hash = 0xcbf29ce484222325
            ("a", 8, 4),       // hash = 0xaf63dc4c8601ec8c
            ("b", 8, 5),       // hash = 0xaf63df4c8601f1a5
            ("foobar", 8, 0),  // hash = 0x85944171f73967e8
            ("user:42", 8, 2), // hash = 0x6c151ea4dcd221c2
            ("user:42", 4, 2),
            ("user:42", 16, 2),
            ("alice", 4, 3),               // hash = 0x508b2abb65a03907
            ("bob", 4, 0),                 // hash = 0x004d4419134a0a54
            ("k0", 8, 6),                  // hash = 0x08be0e07b562230e
            ("k1", 8, 1),                  // hash = 0x08be0f07b56224c1
            ("the quick brown fox", 8, 2), // hash = 0x59aeb7b40bd8c122
        ];
        for &(key, shards, expected) in vectors {
            assert_eq!(
                shard_of(key, shards),
                expected,
                "shard_of({key:?}, {shards}) drifted from the pinned wire format"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        let _ = shard_of("k", 0);
    }

    #[test]
    fn cluster_routes_runs_and_converges() {
        let mut cluster = ShardedKv::new(ShardConfig {
            shards: 3,
            replicas_per_shard: 3,
            ..Default::default()
        });
        assert_eq!(cluster.num_shards(), 3);
        assert_eq!(cluster.replicas_per_shard(), 3);
        let mut routed = [0u64; 3];
        for k in 0..12u64 {
            let key = format!("k{k}");
            let shard = cluster.put(&key, &format!("v{k}"), 10 + 5 * k);
            assert_eq!(shard, cluster.shard_of_key(&key));
            routed[shard] += 1;
        }
        cluster.run_until(3_000);
        for k in 0..12u64 {
            let key = format!("k{k}");
            assert_eq!(cluster.get(&key).as_deref(), Some(&*format!("v{k}")));
        }
        let report = cluster.report();
        assert!(report.all_converged());
        assert_eq!(report.total_ops_routed(), 12);
        for (s, shard_report) in report.shards.iter().enumerate() {
            assert_eq!(shard_report.shard, s);
            assert_eq!(shard_report.ops_routed, routed[s]);
            // every replica of the shard applied every op routed to it
            assert!(shard_report.applied.iter().all(|&a| a as u64 == routed[s]));
            assert!(shard_report.snapshots_agree());
        }
        // the aggregate counters cover all shards
        assert!(report.totals.messages_sent > 0);
        assert_eq!(report.totals.sends_per_process.len(), 9);
    }

    #[test]
    fn deletes_are_routed_to_the_owning_shard() {
        let mut cluster = ShardedKv::new(ShardConfig {
            shards: 2,
            replicas_per_shard: 2,
            ..Default::default()
        });
        cluster.put("gone", "soon", 10);
        cluster.del("gone", 50);
        cluster.run_until(2_000);
        assert_eq!(cluster.get("gone"), None);
        assert_eq!(cluster.report().total_ops_routed(), 2);
    }

    #[test]
    fn zipf_workload_runs_end_to_end_with_batching() {
        let workload = KvWorkload::zipf(ZipfMix {
            keys: 24,
            ops: 60,
            clients: 6,
            ..Default::default()
        });
        let mut cluster = ShardedKv::new(ShardConfig {
            shards: 4,
            replicas_per_shard: 3,
            etob: EtobConfig::batched(8),
            ..Default::default()
        });
        cluster.submit_workload(&workload);
        cluster.run_until(workload.last_submission_time() + 2_000);
        let report = cluster.report();
        assert!(report.all_converged());
        let finished = report.converged_at().expect("all shards converged");
        assert!(finished.as_u64() >= workload.ops()[0].at);
        assert_eq!(report.total_ops_routed(), 60);
        // every shard applied exactly what was routed to it, on every replica
        for s in report.shards {
            assert!(s.applied.iter().all(|&a| a as u64 == s.ops_routed));
        }
    }

    #[test]
    fn partitioning_one_shard_delays_only_that_shard() {
        let base = ShardConfig {
            shards: 3,
            replicas_per_shard: 3,
            ..Default::default()
        };
        let isolated: ProcessSet = [0].into_iter().collect();
        let partitioned_net = NetworkModel::fixed_delay(2).with_partition(
            Time::new(5),
            Time::new(1_500),
            PartitionSpec::isolate(isolated, 3),
        );
        let mut cluster = ShardedKv::builder(base)
            .shard_network(1, partitioned_net)
            .build();
        // ops entering through replica 1 (connected side)
        for shard in 0..3 {
            for k in 0..20u64 {
                let key = format!("s{shard}-{k}");
                if cluster.shard_of_key(&key) == shard {
                    cluster.submit(&KvOp {
                        client: 1,
                        at: 20 + 10 * k,
                        key,
                        value: Some("v".into()),
                    });
                }
            }
        }
        cluster.run_until(1_000); // probe while shard 1 is partitioned
        let report = cluster.report();
        for s in [0usize, 2] {
            assert!(
                report.shards[s].is_converged(),
                "unaffected shard {s} must be converged: {:?}",
                report.shards[s]
            );
        }
        // the isolated replica of shard 1 lags behind its shard's routed ops
        let lagging = cluster.applied(1)[0];
        assert!(
            (lagging as u64) < cluster.ops_routed(1),
            "isolated replica should lag"
        );
        // after the heal the affected shard converges too
        cluster.run_until(4_000);
        assert!(cluster.report().all_converged());
    }

    #[test]
    fn custom_routers_and_state_machines_plug_in() {
        /// Routes by key length instead of hash.
        #[derive(Debug)]
        struct LengthRouter;
        impl Router for LengthRouter {
            fn route(&self, key: &str, shards: usize) -> usize {
                key.len() % shards
            }
        }

        use crate::state_machine::Counter;
        let mut cluster: ShardedCluster<Counter, LengthRouter> =
            ShardedClusterBuilder::<Counter>::new(ShardConfig {
                shards: 2,
                replicas_per_shard: 2,
                ..Default::default()
            })
            .router(LengthRouter)
            .build();
        assert_eq!(cluster.shard_of_key("ab"), 0);
        assert_eq!(cluster.shard_of_key("abc"), 1);
        cluster.submit_keyed("ab", Counter::add(2), 10, None);
        cluster.submit_keyed("abc", Counter::add(3), 10, None);
        cluster.run_until(2_000);
        let even = cluster.cluster(0).state(ProcessId::new(0)).unwrap();
        let odd = cluster.cluster(1).state(ProcessId::new(0)).unwrap();
        assert_eq!(even.value(), 2);
        assert_eq!(odd.value(), 3);
        assert_eq!(cluster.report().total_applied(), 4);
    }

    /// Entry-replica fairness: the round-robin pointer moves past every
    /// replica actually used, including explicitly chosen ones. The full
    /// dispatch sequence is pinned — under the old behavior (pointer
    /// advanced only on the round-robin arm) the same script dispatched
    /// [0, 2, 1, 2, 0, 0], double-loading replica 0 after each explicit
    /// entry.
    #[test]
    fn round_robin_entry_interleaves_fairly_with_explicit_clients() {
        let mut cluster = ShardedKv::new(ShardConfig {
            shards: 1,
            replicas_per_shard: 3,
            ..Default::default()
        });
        let script: [Option<usize>; 6] = [None, Some(2), None, None, Some(0), None];
        for (k, client) in script.iter().enumerate() {
            cluster.submit_keyed(
                "k",
                KvStore::put("k", &format!("v{k}")),
                10 + 10 * k as u64,
                *client,
            );
        }
        cluster.run_until(2_000);
        let delivered = cluster
            .cluster(0)
            .delivered(ProcessId::new(0))
            .expect("sim replicas expose the delivered sequence");
        let entries: Vec<usize> = delivered.iter().map(|m| m.id.origin.index()).collect();
        assert_eq!(entries, vec![0, 2, 0, 1, 0, 1]);
    }

    /// Worker-pool stepping is pure scheduling: the same seeded workload
    /// through sequential and parallel modes produces byte-identical
    /// reports (the full conformance sweep lives in `tests/sharding.rs`).
    #[test]
    fn parallel_stepping_matches_sequential_results() {
        let run = |parallelism: Parallelism| {
            let workload = KvWorkload::zipf(ZipfMix {
                keys: 16,
                ops: 40,
                clients: 4,
                ..Default::default()
            });
            let mut cluster = ShardedKv::builder(ShardConfig {
                shards: 4,
                replicas_per_shard: 3,
                ..Default::default()
            })
            .parallelism(parallelism)
            .build();
            cluster.submit_workload(&workload);
            let targets: Vec<usize> = (0..cluster.num_shards())
                .map(|s| cluster.ops_routed(s) as usize)
                .collect();
            assert!(cluster.run_until_applied(&targets, 30_000));
            cluster.finish()
        };
        let sequential = run(Parallelism::Sequential);
        let parallel = run(Parallelism::Workers(3));
        assert_eq!(sequential.to_json(), parallel.to_json());
        assert!(parallel.all_converged());
    }

    #[test]
    #[should_panic(expected = "no such shard")]
    fn shard_network_override_checks_bounds() {
        let _ = ShardedKv::builder(ShardConfig::default())
            .shard_network(99, NetworkModel::fixed_delay(1));
    }

    #[test]
    #[should_panic(expected = "apply only to build()")]
    fn build_with_rejects_silently_dropped_network_overrides() {
        let _ = ShardedKv::builder(ShardConfig::default())
            .shard_network(0, NetworkModel::fixed_delay(9))
            .build_with(|_| SimEngine::new());
    }

    #[test]
    fn build_with_plugs_in_custom_engines_per_shard() {
        let mut cluster = ShardedKv::builder(ShardConfig {
            shards: 2,
            replicas_per_shard: 2,
            ..Default::default()
        })
        .build_with(|s| SimEngine::new().seed(100 + s as u64));
        cluster.put("a", "1", 10);
        cluster.put("b", "2", 10);
        cluster.run_until(2_000);
        assert_eq!(cluster.get("a").as_deref(), Some("1"));
        assert_eq!(cluster.get("b").as_deref(), Some("2"));
        assert!(cluster.report().all_converged());
    }
}

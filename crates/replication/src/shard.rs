//! A sharded, eventually consistent key–value service over batched ETOB.
//!
//! The paper's motivating systems (Dynamo, PNUTS, Bigtable) scale
//! horizontally: the keyspace is hash-partitioned across many independent
//! replica groups, each internally replicated. This module provides exactly
//! that layer on top of Algorithm 5:
//!
//! * [`shard_of`] — the deterministic hash partitioner mapping a key to the
//!   shard that owns it;
//! * [`ShardedKv`] — a cluster of `shards` independent ETOB groups, each a
//!   simulated world of [`Replica<KvStore, EtobOmega>`] processes driven by
//!   its own Ω oracle. Client operations are routed to the owning shard and
//!   enter through a round-robin entry replica;
//! * [`ClusterReport`] / [`ShardReport`] — aggregated per-shard convergence,
//!   availability and message-cost metrics.
//!
//! Because shards are fully independent ETOB groups, each pays only the
//! two-communication-step stable-leader latency the paper proves for a
//! *single* group, regardless of cluster size — and a partition inside one
//! shard delays convergence of that shard only (the experiments E10 and the
//! `tests/sharding.rs` suite demonstrate both properties). Combined with the
//! [`EtobConfig::batch`](ec_core::etob_omega::EtobConfig) flush knob, the
//! per-shard hot path scales with operations per flush rather than per
//! message (experiment E11).

use ec_core::etob_omega::{EtobConfig, EtobOmega};
use ec_core::workload::{KvOp, KvWorkload};
use ec_detectors::omega::OmegaOracle;
use ec_sim::{FailurePattern, Metrics, NetworkModel, ProcessId, Time, World, WorldBuilder};

use crate::convergence::ConvergenceReport;
use crate::replica::{Replica, ReplicaCommand};
use crate::state_machine::KvStore;

/// The simulated world of one shard: an independent group of KV replicas
/// over Algorithm 5, driven by its own Ω oracle.
pub type ShardWorld = World<Replica<KvStore, EtobOmega>, OmegaOracle>;

/// Maps a key to the shard that owns it: FNV-1a over the key bytes, reduced
/// modulo the shard count. Deterministic and stable across runs, so routers,
/// tests and clients always agree on ownership.
///
/// # Panics
///
/// Panics if `shards == 0`.
///
/// # Example
///
/// ```
/// use ec_replication::shard::shard_of;
/// let s = shard_of("user:42", 8);
/// assert!(s < 8);
/// assert_eq!(s, shard_of("user:42", 8), "routing is deterministic");
/// ```
pub fn shard_of(key: &str, shards: usize) -> usize {
    assert!(shards > 0, "a cluster needs at least one shard");
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % shards as u64) as usize
}

/// Configuration of a [`ShardedKv`] cluster.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardConfig {
    /// Number of independent ETOB groups the keyspace is partitioned across.
    pub shards: usize,
    /// Replicas per shard (each shard is its own `n`-process world).
    pub replicas_per_shard: usize,
    /// ETOB configuration shared by all shards (promote period, eager
    /// promotion, and the batching flush interval).
    pub etob: EtobConfig,
    /// Network model shared by all shards; override a single shard's network
    /// (e.g. to script a partition) via [`ShardedKvBuilder::shard_network`].
    pub network: NetworkModel,
    /// Base seed; shard `s` runs with `seed + s` so the shard worlds are
    /// deterministic but not lock-stepped copies of each other.
    pub seed: u64,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            shards: 4,
            replicas_per_shard: 3,
            etob: EtobConfig::default(),
            network: NetworkModel::fixed_delay(2),
            seed: 7,
        }
    }
}

/// Builder for a [`ShardedKv`], allowing per-shard network overrides.
#[derive(Clone, Debug)]
pub struct ShardedKvBuilder {
    config: ShardConfig,
    shard_networks: Vec<Option<NetworkModel>>,
}

impl ShardedKvBuilder {
    /// Starts building a cluster from a base configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration names zero shards or fewer than two
    /// replicas per shard (each shard is a world, and worlds need `n ≥ 2`).
    pub fn new(config: ShardConfig) -> Self {
        assert!(config.shards > 0, "a cluster needs at least one shard");
        assert!(
            config.replicas_per_shard >= 2,
            "each shard runs a world of at least two replicas"
        );
        let shard_networks = vec![None; config.shards];
        ShardedKvBuilder {
            config,
            shard_networks,
        }
    }

    /// Overrides the network model of one shard — the hook the partition
    /// experiments use to isolate replicas of a single shard while the rest
    /// of the cluster keeps its base network.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn shard_network(mut self, shard: usize, network: NetworkModel) -> Self {
        assert!(shard < self.config.shards, "no such shard: {shard}");
        self.shard_networks[shard] = Some(network);
        self
    }

    /// Builds the cluster: one independent world per shard.
    pub fn build(self) -> ShardedKv {
        let ShardedKvBuilder {
            config,
            shard_networks,
        } = self;
        let n = config.replicas_per_shard;
        let worlds = shard_networks
            .into_iter()
            .enumerate()
            .map(|(s, network)| {
                let failures = FailurePattern::no_failures(n);
                let omega = OmegaOracle::stable_from_start(failures.clone());
                let etob = config.etob;
                WorldBuilder::new(n)
                    .network(network.unwrap_or_else(|| config.network.clone()))
                    .failures(failures)
                    .seed(config.seed + s as u64)
                    .build_with(|p| Replica::new(EtobOmega::new(p, etob)), omega)
            })
            .collect();
        ShardedKv {
            ops_routed: vec![0; config.shards],
            next_entry: vec![0; config.shards],
            config,
            worlds,
        }
    }
}

/// A sharded eventually consistent key–value service: `shards` independent
/// ETOB replica groups behind a hash router.
///
/// # Example
///
/// ```
/// use ec_replication::shard::{ShardConfig, ShardedKv};
///
/// let mut cluster = ShardedKv::new(ShardConfig::default());
/// cluster.put("alice", "1", 10);
/// cluster.put("bob", "2", 12);
/// cluster.run_until(2_000);
/// assert_eq!(cluster.get("alice").as_deref(), Some("1"));
/// assert_eq!(cluster.get("bob").as_deref(), Some("2"));
/// let report = cluster.report();
/// assert!(report.all_converged());
/// assert_eq!(report.total_ops_routed(), 2);
/// ```
#[derive(Debug)]
pub struct ShardedKv {
    config: ShardConfig,
    worlds: Vec<ShardWorld>,
    /// Operations routed to each shard so far.
    ops_routed: Vec<u64>,
    /// Round-robin entry replica per shard (simulating clients contacting
    /// different front-end replicas).
    next_entry: Vec<usize>,
}

impl ShardedKv {
    /// Builds a cluster with a uniform network across shards. Use
    /// [`ShardedKv::builder`] to override single shards.
    pub fn new(config: ShardConfig) -> Self {
        ShardedKvBuilder::new(config).build()
    }

    /// Starts a builder (for per-shard network overrides).
    pub fn builder(config: ShardConfig) -> ShardedKvBuilder {
        ShardedKvBuilder::new(config)
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.config.shards
    }

    /// Replicas per shard.
    pub fn replicas_per_shard(&self) -> usize {
        self.config.replicas_per_shard
    }

    /// The shard owning `key`.
    pub fn shard_of_key(&self, key: &str) -> usize {
        shard_of(key, self.config.shards)
    }

    /// Routes a `put key value` to the owning shard at time `at`; returns the
    /// shard it was routed to.
    pub fn put(&mut self, key: &str, value: &str, at: u64) -> usize {
        let command = KvStore::put(key, value);
        self.route(key, command, at, None)
    }

    /// Routes a `del key` to the owning shard at time `at`; returns the shard
    /// it was routed to.
    pub fn del(&mut self, key: &str, at: u64) -> usize {
        let command = KvStore::del(key);
        self.route(key, command, at, None)
    }

    /// Routes one operation of a [`KvWorkload`] client mix. The client index
    /// picks the entry replica inside the owning shard, so distinct clients
    /// exercise distinct front ends.
    pub fn submit(&mut self, op: &KvOp) -> usize {
        let command = match &op.value {
            Some(value) => KvStore::put(&op.key, value),
            None => KvStore::del(&op.key),
        };
        self.route(&op.key, command, op.at, Some(op.client))
    }

    /// Routes an entire client mix.
    pub fn submit_workload(&mut self, workload: &KvWorkload) {
        for op in workload.ops() {
            self.submit(op);
        }
    }

    fn route(&mut self, key: &str, command: Vec<u8>, at: u64, client: Option<usize>) -> usize {
        let shard = self.shard_of_key(key);
        let n = self.config.replicas_per_shard;
        let entry = match client {
            Some(c) => c % n,
            None => {
                let e = self.next_entry[shard];
                self.next_entry[shard] = (e + 1) % n;
                e
            }
        };
        self.ops_routed[shard] += 1;
        self.worlds[shard].schedule_input(ProcessId::new(entry), ReplicaCommand::new(command), at);
        shard
    }

    /// Advances every shard world to time `t` (shards are independent, so
    /// this is a simple per-shard run).
    pub fn run_until(&mut self, t: u64) {
        for world in &mut self.worlds {
            world.run_until(t);
        }
    }

    /// Reads `key` from replica 0 of the owning shard (a local, eventually
    /// consistent read, as in the Dynamo-style systems the paper cites).
    pub fn get(&self, key: &str) -> Option<String> {
        let shard = self.shard_of_key(key);
        self.worlds[shard]
            .algorithm(ProcessId::new(0))
            .state()
            .get(key)
            .map(str::to_owned)
    }

    /// Per-replica applied-command counts of one shard.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn applied(&self, shard: usize) -> Vec<usize> {
        let world = &self.worlds[shard];
        world
            .process_ids()
            .map(|p| world.algorithm(p).applied())
            .collect()
    }

    /// Operations routed to `shard` so far.
    pub fn ops_routed(&self, shard: usize) -> u64 {
        self.ops_routed[shard]
    }

    /// The world of one shard (for inspection in tests and experiments).
    pub fn world(&self, shard: usize) -> &ShardWorld {
        &self.worlds[shard]
    }

    /// Aggregates per-shard convergence and message metrics into a
    /// cluster-level report.
    pub fn report(&self) -> ClusterReport {
        let mut totals = Metrics::new(0);
        let shards = self
            .worlds
            .iter()
            .enumerate()
            .map(|(s, world)| {
                totals.merge(world.metrics());
                let convergence = ConvergenceReport::from_history(
                    &world.trace().output_history(),
                    &world.failures().correct(),
                );
                let updates_sent = world
                    .process_ids()
                    .map(|p| world.algorithm(p).broadcast_layer().updates_sent())
                    .sum();
                ShardReport {
                    shard: s,
                    ops_routed: self.ops_routed[s],
                    applied: self.applied(s),
                    converged_at: convergence.converged_at,
                    divergences: convergence.divergence_count(),
                    messages_sent: world.metrics().messages_sent,
                    updates_sent,
                }
            })
            .collect();
        ClusterReport { shards, totals }
    }
}

/// Convergence and cost summary of one shard.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardReport {
    /// The shard index.
    pub shard: usize,
    /// Operations routed to this shard.
    pub ops_routed: u64,
    /// Applied-command count per replica.
    pub applied: Vec<usize>,
    /// When the shard's replicas (re-)converged, if they did.
    pub converged_at: Option<Time>,
    /// Number of divergence episodes observed.
    pub divergences: usize,
    /// Messages sent inside the shard.
    pub messages_sent: u64,
    /// `update` broadcasts performed inside the shard (ops ÷ this ratio is
    /// the batching amortization the E11 experiment reports).
    pub updates_sent: u64,
}

impl ShardReport {
    /// Returns `true` if the shard's replicas agree at the end of the run.
    pub fn is_converged(&self) -> bool {
        self.converged_at.is_some()
    }
}

/// Cluster-level aggregation of the per-shard reports.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClusterReport {
    /// One report per shard.
    pub shards: Vec<ShardReport>,
    /// Merged counters of all shard worlds.
    pub totals: Metrics,
}

impl ClusterReport {
    /// Returns `true` if every shard converged.
    pub fn all_converged(&self) -> bool {
        self.shards.iter().all(ShardReport::is_converged)
    }

    /// Total operations routed across shards.
    pub fn total_ops_routed(&self) -> u64 {
        self.shards.iter().map(|s| s.ops_routed).sum()
    }

    /// Total commands applied across all replicas of all shards.
    pub fn total_applied(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.applied.iter().sum::<usize>())
            .sum()
    }

    /// Total `update` broadcasts across shards (the E11 denominator).
    pub fn total_updates_sent(&self) -> u64 {
        self.shards.iter().map(|s| s.updates_sent).sum()
    }

    /// The cluster-level convergence time: the latest per-shard convergence
    /// time, or `None` if any shard has not converged. Shards are
    /// independent, so the slowest shard is what a client spanning the whole
    /// keyspace observes — the completion time experiment E10 reports.
    ///
    /// Note that the underlying worlds never go *quiescent*: the paper's
    /// Algorithm 5 has the stable leader gossip its promotion sequence
    /// forever, so convergence of the delivered state — not absence of
    /// traffic — is the right completion signal.
    pub fn converged_at(&self) -> Option<Time> {
        self.shards
            .iter()
            .map(|s| s.converged_at)
            .collect::<Option<Vec<Time>>>()
            .and_then(|times| times.into_iter().max())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ec_core::workload::ZipfMix;
    use ec_sim::{PartitionSpec, ProcessSet};

    #[test]
    fn router_is_deterministic_and_covers_all_shards() {
        let keys: Vec<String> = (0..200).map(|k| format!("key{k}")).collect();
        let shards = 8;
        let mut hits = vec![0usize; shards];
        for key in &keys {
            let s = shard_of(key, shards);
            assert_eq!(s, shard_of(key, shards));
            hits[s] += 1;
        }
        // FNV spreads 200 keys over 8 shards without leaving any empty
        assert!(hits.iter().all(|&h| h > 0), "hits = {hits:?}");
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        let _ = shard_of("k", 0);
    }

    #[test]
    fn cluster_routes_runs_and_converges() {
        let mut cluster = ShardedKv::new(ShardConfig {
            shards: 3,
            replicas_per_shard: 3,
            ..Default::default()
        });
        assert_eq!(cluster.num_shards(), 3);
        assert_eq!(cluster.replicas_per_shard(), 3);
        let mut routed = [0u64; 3];
        for k in 0..12u64 {
            let key = format!("k{k}");
            let shard = cluster.put(&key, &format!("v{k}"), 10 + 5 * k);
            assert_eq!(shard, cluster.shard_of_key(&key));
            routed[shard] += 1;
        }
        cluster.run_until(3_000);
        for k in 0..12u64 {
            let key = format!("k{k}");
            assert_eq!(cluster.get(&key).as_deref(), Some(&*format!("v{k}")));
        }
        let report = cluster.report();
        assert!(report.all_converged());
        assert_eq!(report.total_ops_routed(), 12);
        for (s, shard_report) in report.shards.iter().enumerate() {
            assert_eq!(shard_report.ops_routed, routed[s]);
            // every replica of the shard applied every op routed to it
            assert!(shard_report.applied.iter().all(|&a| a as u64 == routed[s]));
        }
        // the aggregate counters cover all shards
        assert!(report.totals.messages_sent > 0);
        assert_eq!(report.totals.sends_per_process.len(), 9);
    }

    #[test]
    fn deletes_are_routed_to_the_owning_shard() {
        let mut cluster = ShardedKv::new(ShardConfig {
            shards: 2,
            replicas_per_shard: 2,
            ..Default::default()
        });
        cluster.put("gone", "soon", 10);
        cluster.del("gone", 50);
        cluster.run_until(2_000);
        assert_eq!(cluster.get("gone"), None);
        assert_eq!(cluster.report().total_ops_routed(), 2);
    }

    #[test]
    fn zipf_workload_runs_end_to_end_with_batching() {
        let workload = KvWorkload::zipf(ZipfMix {
            keys: 24,
            ops: 60,
            clients: 6,
            ..Default::default()
        });
        let mut cluster = ShardedKv::new(ShardConfig {
            shards: 4,
            replicas_per_shard: 3,
            etob: EtobConfig::batched(8),
            ..Default::default()
        });
        cluster.submit_workload(&workload);
        cluster.run_until(workload.last_submission_time() + 2_000);
        let report = cluster.report();
        assert!(report.all_converged());
        let finished = report.converged_at().expect("all shards converged");
        assert!(finished.as_u64() >= workload.ops()[0].at);
        assert_eq!(report.total_ops_routed(), 60);
        // every shard applied exactly what was routed to it, on every replica
        for s in report.shards {
            assert!(s.applied.iter().all(|&a| a as u64 == s.ops_routed));
        }
    }

    #[test]
    fn partitioning_one_shard_delays_only_that_shard() {
        let base = ShardConfig {
            shards: 3,
            replicas_per_shard: 3,
            ..Default::default()
        };
        let isolated: ProcessSet = [0].into_iter().collect();
        let partitioned_net = NetworkModel::fixed_delay(2).with_partition(
            Time::new(5),
            Time::new(1_500),
            PartitionSpec::isolate(isolated, 3),
        );
        let mut cluster = ShardedKv::builder(base)
            .shard_network(1, partitioned_net)
            .build();
        // three ops per shard, entering through replica 1 (connected side)
        for shard in 0..3 {
            for k in 0..20u64 {
                let key = format!("s{shard}-{k}");
                if cluster.shard_of_key(&key) == shard {
                    cluster.submit(&KvOp {
                        client: 1,
                        at: 20 + 10 * k,
                        key,
                        value: Some("v".into()),
                    });
                }
            }
        }
        cluster.run_until(1_000); // probe while shard 1 is partitioned
        let report = cluster.report();
        for s in [0usize, 2] {
            assert!(
                report.shards[s].is_converged(),
                "unaffected shard {s} must be converged: {:?}",
                report.shards[s]
            );
        }
        // the isolated replica of shard 1 lags behind its shard's routed ops
        let lagging = cluster.applied(1)[0];
        assert!(
            (lagging as u64) < cluster.ops_routed(1),
            "isolated replica should lag"
        );
        // after the heal the affected shard converges too
        cluster.run_until(4_000);
        assert!(cluster.report().all_converged());
    }

    #[test]
    #[should_panic(expected = "no such shard")]
    fn shard_network_override_checks_bounds() {
        let _ = ShardedKv::builder(ShardConfig::default())
            .shard_network(99, NetworkModel::fixed_delay(1));
    }
}

//! Deterministic state machines replicated by the service layer.
//!
//! A replicated service is a deterministic state machine whose commands are
//! delivered through (eventual) total order broadcast. Replicas replay the
//! delivered command sequence; two replicas whose delivered sequences are
//! equal therefore hold identical states, so sequence convergence (the ETOB
//! guarantees) translates directly into state convergence.

use std::collections::BTreeMap;
use std::fmt;

/// A deterministic state machine driven by opaque byte-string commands.
///
/// Implementations must be deterministic: the state after applying a command
/// sequence is a pure function of the sequence. [`StateMachine::snapshot`]
/// returns a canonical encoding used by the convergence metrics to compare
/// replica states.
pub trait StateMachine: Clone + fmt::Debug + Default {
    /// Applies one command. Unrecognized commands must be ignored (not
    /// panic), so that replicas never diverge by crashing on garbage.
    fn apply(&mut self, command: &[u8]);

    /// A canonical encoding of the current state.
    fn snapshot(&self) -> Vec<u8>;

    /// Reconstructs a state machine from a [`StateMachine::snapshot`]
    /// encoding, if the implementation supports it.
    ///
    /// Execution engines that cannot reach into replica memory (the thread
    /// runtime observes replicas only through their emitted outputs) use
    /// this to offer typed reads: the latest snapshot bytes are decoded back
    /// into an `S`. The default returns `None`, which degrades such reads to
    /// raw snapshot bytes; the built-in state machines all round-trip.
    fn from_snapshot(snapshot: &[u8]) -> Option<Self> {
        let _ = snapshot;
        None
    }

    /// Replays a full command sequence from the initial state.
    fn replay<'a, I: IntoIterator<Item = &'a [u8]>>(commands: I) -> Self {
        let mut sm = Self::default();
        for c in commands {
            sm.apply(c);
        }
        sm
    }
}

/// A key–value store. Commands: `put <key> <value>` and `del <key>`
/// (whitespace separated, UTF-8).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct KvStore {
    entries: BTreeMap<String, String>,
}

impl KvStore {
    /// Encodes a `put` command.
    pub fn put(key: &str, value: &str) -> Vec<u8> {
        format!("put {key} {value}").into_bytes()
    }

    /// Encodes a `del` command.
    pub fn del(key: &str) -> Vec<u8> {
        format!("del {key}").into_bytes()
    }

    /// Reads a key.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.entries.get(key).map(|s| s.as_str())
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the store is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl StateMachine for KvStore {
    fn apply(&mut self, command: &[u8]) {
        let Ok(text) = std::str::from_utf8(command) else {
            return;
        };
        let mut parts = text.splitn(3, ' ');
        match (parts.next(), parts.next(), parts.next()) {
            (Some("put"), Some(key), Some(value)) => {
                self.entries.insert(key.to_string(), value.to_string());
            }
            (Some("del"), Some(key), _) => {
                self.entries.remove(key);
            }
            _ => {}
        }
    }

    fn snapshot(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for (k, v) in &self.entries {
            out.extend_from_slice(k.as_bytes());
            out.push(b'=');
            out.extend_from_slice(v.as_bytes());
            out.push(b';');
        }
        out
    }

    /// Exact for every state reachable through [`KvStore::put`] /
    /// [`KvStore::del`] commands whose keys avoid `=` and whose keys and
    /// values avoid `;` (commands are whitespace-delimited, so such bytes
    /// are representable but make the `k=v;` encoding ambiguous).
    fn from_snapshot(snapshot: &[u8]) -> Option<Self> {
        let text = std::str::from_utf8(snapshot).ok()?;
        let mut store = KvStore::default();
        for segment in text.split(';').filter(|s| !s.is_empty()) {
            let (key, value) = segment.split_once('=')?;
            store.entries.insert(key.to_string(), value.to_string());
        }
        Some(store)
    }
}

/// A signed counter. Commands: `+<n>` and `-<n>`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Counter {
    value: i64,
}

impl Counter {
    /// Encodes an increment command.
    pub fn add(n: i64) -> Vec<u8> {
        format!("+{n}").into_bytes()
    }

    /// Encodes a decrement command.
    pub fn sub(n: i64) -> Vec<u8> {
        format!("-{n}").into_bytes()
    }

    /// The current value.
    pub fn value(&self) -> i64 {
        self.value
    }
}

impl StateMachine for Counter {
    fn apply(&mut self, command: &[u8]) {
        let Ok(text) = std::str::from_utf8(command) else {
            return;
        };
        let Some(rest) = text.get(1..) else { return };
        let Ok(n) = rest.parse::<i64>() else { return };
        match text.as_bytes().first() {
            Some(b'+') => self.value = self.value.saturating_add(n),
            Some(b'-') => self.value = self.value.saturating_sub(n),
            _ => {}
        }
    }

    fn snapshot(&self) -> Vec<u8> {
        self.value.to_le_bytes().to_vec()
    }

    fn from_snapshot(snapshot: &[u8]) -> Option<Self> {
        let bytes: [u8; 8] = snapshot.try_into().ok()?;
        Some(Counter {
            value: i64::from_le_bytes(bytes),
        })
    }
}

/// A register holding the last written value (last writer in delivery order
/// wins). Commands: the raw value to write.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Register {
    value: Vec<u8>,
    writes: u64,
}

impl Register {
    /// The current value.
    pub fn value(&self) -> &[u8] {
        &self.value
    }

    /// Number of writes applied.
    pub fn writes(&self) -> u64 {
        self.writes
    }
}

impl StateMachine for Register {
    fn apply(&mut self, command: &[u8]) {
        self.value = command.to_vec();
        self.writes += 1;
    }

    fn snapshot(&self) -> Vec<u8> {
        let mut out = self.writes.to_le_bytes().to_vec();
        out.extend_from_slice(&self.value);
        out
    }

    fn from_snapshot(snapshot: &[u8]) -> Option<Self> {
        let (writes, value) = snapshot.split_first_chunk::<8>()?;
        Some(Register {
            value: value.to_vec(),
            writes: u64::from_le_bytes(*writes),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kv_store_applies_puts_and_dels() {
        let mut kv = KvStore::default();
        kv.apply(&KvStore::put("a", "1"));
        kv.apply(&KvStore::put("b", "2 with spaces"));
        assert_eq!(kv.get("a"), Some("1"));
        assert_eq!(kv.get("b"), Some("2 with spaces"));
        kv.apply(&KvStore::del("a"));
        assert_eq!(kv.get("a"), None);
        assert_eq!(kv.len(), 1);
        assert!(!kv.is_empty());
    }

    #[test]
    fn kv_store_ignores_garbage() {
        let mut kv = KvStore::default();
        kv.apply(b"nonsense");
        kv.apply(&[0xff, 0xfe]);
        kv.apply(b"put onlykey");
        assert!(kv.is_empty());
    }

    #[test]
    fn kv_snapshot_is_canonical() {
        let mut a = KvStore::default();
        a.apply(&KvStore::put("x", "1"));
        a.apply(&KvStore::put("y", "2"));
        let mut b = KvStore::default();
        b.apply(&KvStore::put("y", "2"));
        b.apply(&KvStore::put("x", "1"));
        assert_eq!(a.snapshot(), b.snapshot());
    }

    #[test]
    fn counter_saturates_and_ignores_garbage() {
        let mut c = Counter::default();
        c.apply(&Counter::add(5));
        c.apply(&Counter::sub(2));
        c.apply(b"junk");
        assert_eq!(c.value(), 3);
        c.apply(&Counter::add(i64::MAX));
        assert_eq!(c.value(), i64::MAX);
    }

    #[test]
    fn register_tracks_last_write_and_count() {
        let mut r = Register::default();
        r.apply(b"first");
        r.apply(b"second");
        assert_eq!(r.value(), b"second");
        assert_eq!(r.writes(), 2);
        let again = Register::replay([b"first".as_slice(), b"second".as_slice()]);
        assert_eq!(again.snapshot(), r.snapshot());
    }

    #[test]
    fn snapshots_round_trip_through_from_snapshot() {
        let mut kv = KvStore::default();
        kv.apply(&KvStore::put("x", "1"));
        kv.apply(&KvStore::put("y", "two words"));
        assert_eq!(KvStore::from_snapshot(&kv.snapshot()), Some(kv.clone()));
        assert_eq!(KvStore::from_snapshot(b""), Some(KvStore::default()));
        assert_eq!(KvStore::from_snapshot(b"corrupt"), None);

        let mut c = Counter::default();
        c.apply(&Counter::add(-12));
        assert_eq!(Counter::from_snapshot(&c.snapshot()), Some(c));
        assert_eq!(Counter::from_snapshot(b"short"), None);

        let mut r = Register::default();
        r.apply(b"payload");
        assert_eq!(Register::from_snapshot(&r.snapshot()), Some(r));
        assert_eq!(Register::from_snapshot(b"tiny"), None);
    }

    #[test]
    fn replay_order_matters_for_the_register() {
        let a = Register::replay([b"x".as_slice(), b"y".as_slice()]);
        let b = Register::replay([b"y".as_slice(), b"x".as_slice()]);
        assert_ne!(a.snapshot(), b.snapshot());
    }
}

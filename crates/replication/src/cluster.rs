//! The engine-agnostic deployment facade: one service API over both
//! execution engines.
//!
//! A replicated service in the style of the paper's motivating systems
//! (Dynamo, PNUTS, Bigtable) is three orthogonal choices:
//!
//! 1. **What** is replicated — any deterministic [`StateMachine`];
//! 2. **How strongly** it is replicated — [`Consistency::Eventual`]
//!    (Algorithm 5 over Ω, partition-available) or [`Consistency::Strong`]
//!    (the Ω + Σ quorum sequencer, partition-blocked);
//! 3. **Where** it runs — the deterministic simulator or real OS threads
//!    (an [`Engine`]).
//!
//! [`ClusterBuilder`] makes all three configuration rather than code: it
//! deploys a state machine at a consistency level on an engine and returns a
//! [`Cluster`] with uniform [`Session`] client handles, a uniform
//! [`ClusterReport`], and uniform read/probe accessors. The cross-engine
//! conformance suite (`tests/conformance.rs`) is the payoff: the same
//! workload script, driven through this API on both engines at both
//! consistency levels, converges to byte-identical state-machine snapshots.
//!
//! ```
//! use ec_replication::{ClusterBuilder, Consistency, KvStore, SimEngine};
//!
//! let mut cluster = ClusterBuilder::<KvStore>::new(3)
//!     .consistency(Consistency::Eventual)
//!     .deploy(&SimEngine::new());
//! let mut session = cluster.session();
//! cluster.submit(&mut session, KvStore::put("greeting", "hello"), 10);
//! cluster.submit(&mut session, KvStore::put("greeting", "world"), 20);
//! cluster.run_until(2_000);
//! // the session's writes are causally chained: "world" wins everywhere
//! for p in cluster.replica_ids() {
//!     assert_eq!(cluster.state(p).unwrap().get("greeting"), Some("world"));
//! }
//! assert!(cluster.report().all_converged());
//! ```

use std::fmt;
use std::marker::PhantomData;

use ec_core::etob_omega::EtobConfig;
use ec_core::tob_consensus::ConsensusTobConfig;
use ec_core::types::{AppMessage, MsgId};
use ec_sim::{Metrics, ProcessId, ProcessSet, Time};

use crate::convergence::ConvergenceReport;
use crate::engine::{DeployPlan, Engine, EngineDeployment, EngineKind};
use crate::replica::ReplicaCommand;
use crate::session::Session;
use crate::state_machine::StateMachine;

/// How strongly a [`Cluster`] replicates its state machine — the choice the
/// paper quantifies the cost of.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Consistency {
    /// Eventual consistency: Algorithm 5 over Ω alone. Replicas keep
    /// serving through partitions and converge afterwards; delivery takes
    /// two communication steps under a stable leader.
    Eventual,
    /// Strong consistency: the quorum-gated sequencer over Ω + Σ. Replicas
    /// agree at all times but block whenever a Σ quorum is unreachable;
    /// delivery takes three communication steps.
    Strong,
}

impl Consistency {
    /// Whether this level needs the quorum detector Σ in addition to Ω.
    pub fn requires_quorums(self) -> bool {
        matches!(self, Consistency::Strong)
    }
}

impl fmt::Display for Consistency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Consistency::Eventual => write!(f, "eventual"),
            Consistency::Strong => write!(f, "strong"),
        }
    }
}

/// Builder for a [`Cluster`]: group size, consistency level and
/// broadcast-layer configuration, deployed onto any [`Engine`].
#[derive(Clone, Debug)]
pub struct ClusterBuilder<S> {
    plan: DeployPlan,
    _state: PhantomData<fn() -> S>,
}

impl<S: StateMachine + Send + 'static> ClusterBuilder<S> {
    /// Starts building a cluster of `replicas` replicas of `S`, eventually
    /// consistent by default.
    ///
    /// # Panics
    ///
    /// Panics if `replicas < 2` (the system model requires `n ≥ 2`).
    pub fn new(replicas: usize) -> Self {
        assert!(
            replicas >= 2,
            "the system model requires at least two replicas"
        );
        ClusterBuilder {
            plan: DeployPlan {
                replicas,
                consistency: Consistency::Eventual,
                etob: EtobConfig::default(),
                tob: ConsensusTobConfig::default(),
                durable: None,
            },
            _state: PhantomData,
        }
    }

    /// Sets the consistency level.
    pub fn consistency(mut self, consistency: Consistency) -> Self {
        self.plan.consistency = consistency;
        self
    }

    /// Sets the Algorithm 5 configuration (promotion period, eager
    /// promotion, batching) used at [`Consistency::Eventual`].
    pub fn etob(mut self, etob: EtobConfig) -> Self {
        self.plan.etob = etob;
        self
    }

    /// Sets the quorum-sequencer configuration used at
    /// [`Consistency::Strong`].
    pub fn tob(mut self, tob: ConsensusTobConfig) -> Self {
        self.plan.tob = tob;
        self
    }

    /// Makes every replica durable under `dir` (replica `i` persists in
    /// `dir/i/`): delivered state is logged and checkpointed, and a
    /// restarted replica recovers from disk, using anti-entropy only for
    /// the suffix it missed. Uses the default cadence; see
    /// [`ClusterBuilder::durable_with`] for full control.
    pub fn durable(self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.durable_with(crate::durable::DurableOptions::new(dir))
    }

    /// Makes every replica durable with explicit [`DurableOptions`]
    /// (checkpoint cadence, snapshot retention).
    ///
    /// [`DurableOptions`]: crate::durable::DurableOptions
    pub fn durable_with(mut self, options: crate::durable::DurableOptions) -> Self {
        self.plan.durable = Some(options);
        self
    }

    /// The deployment plan this builder would hand to an engine.
    pub fn plan(&self) -> &DeployPlan {
        &self.plan
    }

    /// Deploys the cluster on `engine`.
    pub fn deploy<E: Engine>(self, engine: &E) -> Cluster<S> {
        let deployment = engine.deploy::<S>(&self.plan);
        let n = deployment.n();
        Cluster {
            deployment,
            consistency: self.plan.consistency,
            n,
            clock: 0,
            next_seq: vec![0; n],
            next_entry: 0,
            submitted: 0,
            crashed: ProcessSet::new(),
        }
    }
}

/// A deployed replica group: the uniform handle over a state machine `S`
/// replicated at a [`Consistency`] level on an [`Engine`].
///
/// All submissions flow through the cluster, which assigns globally unique
/// message identifiers and keeps facade time (`clock`) monotone, so the same
/// workload script drives a simulated and a threaded deployment identically.
#[derive(Debug)]
pub struct Cluster<S>
where
    S: StateMachine + Send + 'static,
{
    deployment: EngineDeployment<S>,
    consistency: Consistency,
    n: usize,
    clock: u64,
    next_seq: Vec<u64>,
    next_entry: usize,
    submitted: u64,
    crashed: ProcessSet,
}

impl<S: StateMachine + Send + 'static> Cluster<S> {
    /// Starts building a cluster of `replicas` replicas.
    pub fn builder(replicas: usize) -> ClusterBuilder<S> {
        ClusterBuilder::new(replicas)
    }

    /// Number of replicas.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The identifiers of all replicas.
    pub fn replica_ids(&self) -> impl Iterator<Item = ProcessId> {
        (0..self.n).map(ProcessId::new)
    }

    /// The consistency level this cluster was deployed at.
    pub fn consistency(&self) -> Consistency {
        self.consistency
    }

    /// The engine this cluster runs on.
    pub fn engine(&self) -> EngineKind {
        self.deployment.kind()
    }

    /// Current facade time: the largest time passed to
    /// [`Cluster::run_until`] / [`Cluster::submit`] so far.
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// A new client session entering through the next replica (round-robin
    /// over entry replicas, like clients spread over front ends).
    pub fn session(&mut self) -> Session {
        let entry = ProcessId::new(self.next_entry);
        self.next_entry = (self.next_entry + 1) % self.n;
        Session::at(entry)
    }

    /// A new client session pinned to replica `entry`.
    ///
    /// # Panics
    ///
    /// Panics if `entry` is out of range.
    pub fn session_at(&self, entry: ProcessId) -> Session {
        assert!(entry.index() < self.n, "no such replica: {entry}");
        Session::at(entry)
    }

    fn assign_id(&mut self, entry: ProcessId) -> MsgId {
        let counter = &mut self.next_seq[entry.index()];
        *counter += 1;
        MsgId::new(entry, *counter)
    }

    fn submit_raw(&mut self, entry: ProcessId, mut command: ReplicaCommand, at: u64) -> MsgId {
        let id = self.assign_id(entry);
        command.id = Some(id);
        self.clock = self.clock.max(at);
        self.submitted += 1;
        self.deployment.submit(entry, command, at);
        id
    }

    /// Submits a command through `session` at facade time `at`, declaring
    /// the session's previous command as a causal dependency (`C(m)` of the
    /// paper). Returns the identifier assigned to the command.
    ///
    /// Submissions should be made in non-decreasing `at` order — the thread
    /// engine paces them against the wall clock.
    pub fn submit(
        &mut self,
        session: &mut Session,
        command: impl Into<ReplicaCommand>,
        at: u64,
    ) -> MsgId {
        let mut command = command.into();
        if let Some(frontier) = session.frontier() {
            if !command.deps.contains(&frontier) {
                command.deps.push(frontier);
            }
        }
        let id = self.submit_raw(session.entry(), command, at);
        session.advance(id);
        id
    }

    /// Submits a slice of commands through `session` at facade time `at` in
    /// one pass, chaining each command on its predecessor (the first on the
    /// session's current frontier). One call replaces `commands.len()`
    /// facade round-trips, so a driver feeding a hot cluster spends its
    /// time in the protocol, not in per-command bookkeeping. Returns the
    /// identifiers in submission order.
    pub fn submit_batch(
        &mut self,
        session: &mut Session,
        commands: &[ReplicaCommand],
        at: u64,
    ) -> Vec<MsgId> {
        let mut ids = Vec::with_capacity(commands.len());
        for command in commands {
            ids.push(self.submit(session, command.clone(), at));
        }
        ids
    }

    /// Submits a command directly to replica `entry` at facade time `at`,
    /// without session causal threading (any dependencies already declared
    /// on the command are kept).
    pub fn submit_at(
        &mut self,
        entry: ProcessId,
        command: impl Into<ReplicaCommand>,
        at: u64,
    ) -> MsgId {
        self.submit_raw(entry, command.into(), at)
    }

    /// Total commands submitted so far.
    pub fn submitted(&self) -> u64 {
        self.submitted
    }

    /// Advances the cluster to facade time `t`: virtual time on the
    /// simulator, wall-clock-paced time on the thread engine.
    pub fn run_until(&mut self, t: u64) {
        self.clock = self.clock.max(t);
        self.deployment.run_until(t);
    }

    /// Advances time in small steps until every correct replica has applied
    /// at least `target` commands, or facade time `max_t` is reached.
    /// Returns `true` if the target was reached — the uniform way to wait
    /// for convergence without guessing a horizon per engine.
    pub fn run_until_applied(&mut self, target: usize, max_t: u64) -> bool {
        const CHUNK: u64 = 25;
        loop {
            let correct = self.correct();
            if correct.iter().all(|p| self.deployment.applied(p) >= target) {
                return true;
            }
            if self.clock >= max_t {
                return false;
            }
            let next = (self.clock + CHUNK).min(max_t);
            self.run_until(next);
        }
    }

    /// Commands applied by replica `p` so far.
    pub fn applied(&self, p: ProcessId) -> usize {
        self.deployment.applied(p)
    }

    /// Commands replica `p` had applied at facade time `t` (for probing
    /// availability during a partition window). Probing every replica?
    /// [`Cluster::applied_at_all`] walks the output history once instead of
    /// once per replica.
    pub fn applied_at(&self, p: ProcessId, t: u64) -> usize {
        self.deployment.applied_at(p, t)
    }

    /// Commands each replica had applied at facade time `t`, from a single
    /// pass over the output history.
    pub fn applied_at_all(&self, t: u64) -> Vec<usize> {
        let history = self.deployment.output_history();
        self.replica_ids()
            .map(|p| {
                history
                    .value_at(p, Time::new(t))
                    .map(|o| o.applied)
                    .unwrap_or(0)
            })
            .collect()
    }

    /// The timed replica-output history so far, in facade ticks — what the
    /// history-based chaos checkers reconstruct acknowledgement times from.
    pub fn output_history(&self) -> ec_sim::OutputHistory<crate::replica::ReplicaOutput> {
        self.deployment.output_history()
    }

    /// The canonical snapshot of replica `p`'s state machine.
    pub fn snapshot(&self, p: ProcessId) -> Vec<u8> {
        self.deployment.snapshot(p)
    }

    /// A typed copy of replica `p`'s state machine (see
    /// [`EngineDeployment::state`] for engine-specific caveats).
    pub fn state(&self, p: ProcessId) -> Option<S> {
        self.deployment.state(p)
    }

    /// Reads the state machine at `session`'s entry replica — a local,
    /// eventually consistent read, as in the Dynamo-style systems the paper
    /// cites.
    pub fn read(&self, session: &Session) -> Option<S> {
        self.state(session.entry())
    }

    /// The stable delivered sequence of replica `p`'s broadcast layer
    /// (simulator only; `None` live on the thread engine).
    pub fn delivered(&self, p: ProcessId) -> Option<Vec<AppMessage>> {
        self.deployment.delivered(p)
    }

    /// Crashes replica `p` if the engine supports dynamic crashes (thread
    /// and net engines; on the simulator crashes are scripted via
    /// [`crate::engine::SimEngine::failures`]). Returns whether the crash
    /// was applied.
    pub fn crash(&mut self, p: ProcessId) -> bool {
        let applied = self.deployment.crash(p);
        if applied {
            self.crashed.insert(p);
        }
        applied
    }

    /// Restarts a previously crashed replica as a fresh incarnation, if the
    /// engine supports it (net engine only: the new node rejoins behind the
    /// same address with empty state and is re-filled by anti-entropy).
    /// On success `p` counts as correct again. Returns whether the restart
    /// was applied.
    pub fn restart(&mut self, p: ProcessId) -> bool {
        let applied = self.deployment.restart(p);
        if applied {
            self.crashed.remove(p);
        }
        applied
    }

    /// Frames rejected as malformed by the net engine's connection readers
    /// so far (always 0 on the other engines, which have no wire to
    /// corrupt).
    pub fn malformed_frames(&self) -> u64 {
        self.deployment.malformed_frames()
    }

    /// The TCP listen address of replica `p`'s node (net engine only; the
    /// adversarial codec tests dial it to inject raw bytes).
    pub fn node_addr(&self, p: ProcessId) -> Option<std::net::SocketAddr> {
        self.deployment.node_addr(p)
    }

    /// The replicas correct so far.
    pub fn correct(&self) -> ProcessSet {
        self.deployment.correct(&self.crashed)
    }

    /// Message counters so far.
    pub fn metrics(&self) -> Metrics {
        self.deployment.metrics()
    }

    /// Total digest pulls of the Algorithm 5 layers so far — wire-level
    /// update gaps (lost, reordered or rejoin-missed deltas) that the
    /// delta-sync machinery detected and repaired. Simulator-side eventual
    /// deployments only (0 otherwise).
    pub fn sync_pulls(&self) -> u64 {
        self.deployment.sync_pulls()
    }

    /// The merged latency summary of the cluster so far. Live on the
    /// simulator; empty live on the thread and net engines, whose replica
    /// internals surface at [`Cluster::finish`] (scrape a live net node
    /// with [`Cluster::scrape`] instead).
    pub fn telemetry(&self) -> ec_telemetry::TelemetryReport {
        self.deployment.telemetry()
    }

    /// The per-replica flight-recorder traces so far (simulator only; the
    /// chaos harness dumps these next to a failing counterexample). Empty
    /// vectors on the real-time engines.
    pub fn flight_events(&self) -> Vec<Vec<ec_telemetry::Event>> {
        self.deployment.flight_events()
    }

    /// Scrapes the live text metrics exposition of replica `p`'s node over
    /// its socket (net engine only; `None` elsewhere or if `p` is down).
    pub fn scrape(&self, p: ProcessId) -> Option<String> {
        self.deployment.scrape(p)
    }

    /// The uniform cluster report, computed live: per-replica applied
    /// counts and snapshots, convergence of the replica outputs, and
    /// message costs.
    pub fn report(&self) -> ClusterReport {
        let metrics = self.metrics();
        let history = self.deployment.output_history();
        let correct = self.correct();
        let convergence = ConvergenceReport::from_history(&history, &correct);
        let shard = ShardReport {
            shard: 0,
            ops_routed: self.submitted,
            applied: self.replica_ids().map(|p| self.applied(p)).collect(),
            snapshots: self.replica_ids().map(|p| self.snapshot(p)).collect(),
            converged_at: convergence.converged_at,
            divergences: convergence.divergence_count(),
            messages_sent: metrics.messages_sent,
            bytes_sent: metrics.bytes_sent,
            updates_sent: self.deployment.updates_sent(),
            faults_dropped: metrics.faults_dropped,
            faults_duplicated: metrics.faults_duplicated,
            telemetry: self.deployment.telemetry(),
        };
        ClusterReport {
            engine: self.engine(),
            consistency: self.consistency,
            shards: vec![shard],
            totals: metrics,
        }
    }

    /// Stops the cluster and returns the final report. On the thread engine
    /// this joins every replica thread and reads the exact final automata
    /// (including the `update`-broadcast counters a live report cannot
    /// see); on the simulator it is equivalent to [`Cluster::report`].
    pub fn finish(self) -> ClusterReport {
        let engine = self.engine();
        let consistency = self.consistency;
        let submitted = self.submitted;
        let fin = self.deployment.finish(&self.crashed);
        let convergence = ConvergenceReport::from_history(&fin.history, &fin.correct);
        let shard = ShardReport {
            shard: 0,
            ops_routed: submitted,
            applied: fin.applied,
            snapshots: fin.snapshots,
            converged_at: convergence.converged_at,
            divergences: convergence.divergence_count(),
            messages_sent: fin.metrics.messages_sent,
            bytes_sent: fin.metrics.bytes_sent,
            updates_sent: fin.updates_sent,
            faults_dropped: fin.metrics.faults_dropped,
            faults_duplicated: fin.metrics.faults_duplicated,
            telemetry: fin.telemetry,
        };
        ClusterReport {
            engine,
            consistency,
            shards: vec![shard],
            totals: fin.metrics,
        }
    }
}

/// Convergence and cost summary of one replica group (a whole unsharded
/// [`Cluster`], or one shard of a `ShardedCluster`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardReport {
    /// The shard index (0 for an unsharded cluster).
    pub shard: usize,
    /// Operations routed to this group.
    pub ops_routed: u64,
    /// Applied-command count per replica.
    pub applied: Vec<usize>,
    /// Canonical state-machine snapshot per replica — the quantity the
    /// cross-engine conformance suite compares byte for byte.
    pub snapshots: Vec<Vec<u8>>,
    /// When the group's replicas (re-)converged, if they did.
    pub converged_at: Option<Time>,
    /// Number of divergence episodes observed.
    pub divergences: usize,
    /// Messages sent inside the group.
    pub messages_sent: u64,
    /// Modeled wire bytes sent inside the group (see
    /// `ec_sim::Metrics::bytes_sent`) — the quantity the delta wire format
    /// (experiment E12) shrinks.
    pub bytes_sent: u64,
    /// `update` broadcasts performed inside the group (ops ÷ this ratio is
    /// the batching amortization the E11 experiment reports; 0 for strong
    /// groups).
    pub updates_sent: u64,
    /// Messages lost to injected link faults inside the group (chaos runs;
    /// 0 when no faults are scripted).
    pub faults_dropped: u64,
    /// Extra message copies injected by link-fault duplication inside the
    /// group.
    pub faults_duplicated: u64,
    /// Merged latency summary of the group's replicas: submit→deliver,
    /// promote→stable and stability-lag histograms. Empty for live
    /// real-time reports, whose replica internals surface only at finish.
    pub telemetry: ec_telemetry::TelemetryReport,
}

impl ShardReport {
    /// Returns `true` if the group's replicas agree at the end of the run.
    pub fn is_converged(&self) -> bool {
        self.converged_at.is_some()
    }

    /// Returns `true` if every replica's snapshot is byte-identical.
    pub fn snapshots_agree(&self) -> bool {
        self.snapshots.windows(2).all(|w| w[0] == w[1])
    }
}

impl fmt::Display for ShardReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "shard {}: {} ops, applied {:?}, converged at {}, {} divergence(s), {} msgs, \
             {} B, {} updates, {} lost, {} duped",
            self.shard,
            self.ops_routed,
            self.applied,
            self.converged_at
                .map(|t| t.to_string())
                .unwrap_or_else(|| "-".into()),
            self.divergences,
            self.messages_sent,
            self.bytes_sent,
            self.updates_sent,
            self.faults_dropped,
            self.faults_duplicated,
        )?;
        if !self.telemetry.is_empty() {
            write!(f, "; {}", self.telemetry)?;
        }
        Ok(())
    }
}

/// The uniform cluster-level report: one [`ShardReport`] per replica group
/// plus merged message counters, tagged with the engine and consistency
/// level that produced it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClusterReport {
    /// The engine the cluster ran on.
    pub engine: EngineKind,
    /// The consistency level the cluster was deployed at.
    pub consistency: Consistency,
    /// One report per replica group (exactly one for an unsharded cluster).
    pub shards: Vec<ShardReport>,
    /// Merged counters of all groups.
    pub totals: Metrics,
}

impl ClusterReport {
    /// Returns `true` if every group converged.
    pub fn all_converged(&self) -> bool {
        self.shards.iter().all(ShardReport::is_converged)
    }

    /// Total operations routed across groups.
    pub fn total_ops_routed(&self) -> u64 {
        self.shards.iter().map(|s| s.ops_routed).sum()
    }

    /// Total commands applied across all replicas of all groups.
    pub fn total_applied(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.applied.iter().sum::<usize>())
            .sum()
    }

    /// Total `update` broadcasts across groups (the E11 denominator).
    pub fn total_updates_sent(&self) -> u64 {
        self.shards.iter().map(|s| s.updates_sent).sum()
    }

    /// The cluster-level convergence time: the latest per-group convergence
    /// time, or `None` if any group has not converged. Groups are
    /// independent, so the slowest one is what a client spanning the whole
    /// keyspace observes — the completion time experiment E10 reports.
    ///
    /// Note that the underlying groups never go *quiescent*: the paper's
    /// Algorithm 5 has the stable leader gossip its promotion sequence
    /// forever, so convergence of the delivered state — not absence of
    /// traffic — is the right completion signal.
    pub fn converged_at(&self) -> Option<Time> {
        self.shards
            .iter()
            .map(|s| s.converged_at)
            .collect::<Option<Vec<Time>>>()
            .and_then(|times| times.into_iter().max())
    }

    /// The merged latency summary across all groups (histogram merge is
    /// associative and commutative, so this equals any per-shard grouping).
    pub fn telemetry(&self) -> ec_telemetry::TelemetryReport {
        let mut merged = ec_telemetry::TelemetryReport::default();
        for shard in &self.shards {
            merged.merge(&shard.telemetry);
        }
        merged
    }

    /// The stable JSON export of the report's latency data: engine,
    /// consistency, one telemetry object per shard and the merged totals.
    /// Integer-only and timestamp-free, so two identical deterministic runs
    /// export byte-identical strings.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"consistency\":\"{}\",\"engine\":\"{}\",\"shards\":[",
            self.consistency, self.engine
        );
        for (i, shard) in self.shards.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            shard.telemetry.write_json(&mut out);
        }
        out.push_str("],\"telemetry\":");
        self.telemetry().write_json(&mut out);
        out.push('}');
        out
    }
}

impl fmt::Display for ClusterReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} cluster on {} engine: {} ops, {} applied, converged: {}",
            self.consistency,
            self.engine,
            self.total_ops_routed(),
            self.total_applied(),
            self.converged_at()
                .map(|t| t.to_string())
                .unwrap_or_else(|| "no".into()),
        )?;
        for shard in &self.shards {
            writeln!(f, "  {shard}")?;
        }
        write!(
            f,
            "  totals: {} msgs sent ({} B), {} delivered ({} B), {} outputs; faults: {} lost, \
             {} duped, {} crash(es), {} recovery(ies)",
            self.totals.messages_sent,
            self.totals.bytes_sent,
            self.totals.messages_delivered,
            self.totals.bytes_delivered,
            self.totals.outputs,
            self.totals.faults_dropped,
            self.totals.faults_duplicated,
            self.totals.crashes,
            self.totals.recoveries,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SimEngine;
    use crate::state_machine::{Counter, KvStore};
    use ec_sim::{NetworkModel, PartitionSpec};

    #[test]
    fn builder_defaults_and_plan() {
        let builder = ClusterBuilder::<KvStore>::new(3);
        assert_eq!(builder.plan().replicas, 3);
        assert_eq!(builder.plan().consistency, Consistency::Eventual);
        assert!(!Consistency::Eventual.requires_quorums());
        assert!(Consistency::Strong.requires_quorums());
        assert_eq!(format!("{}", Consistency::Eventual), "eventual");
        assert_eq!(format!("{}", Consistency::Strong), "strong");
    }

    #[test]
    #[should_panic(expected = "at least two replicas")]
    fn builder_rejects_singleton_groups() {
        let _ = ClusterBuilder::<KvStore>::new(1);
    }

    #[test]
    fn sessions_round_robin_over_entry_replicas() {
        let mut cluster = ClusterBuilder::<KvStore>::new(3).deploy(&SimEngine::new());
        let entries: Vec<usize> = (0..5).map(|_| cluster.session().entry().index()).collect();
        assert_eq!(entries, vec![0, 1, 2, 0, 1]);
        assert_eq!(cluster.session_at(ProcessId::new(2)).entry().index(), 2);
    }

    #[test]
    #[should_panic(expected = "no such replica")]
    fn pinned_sessions_check_bounds() {
        let cluster = ClusterBuilder::<KvStore>::new(2).deploy(&SimEngine::new());
        let _ = cluster.session_at(ProcessId::new(9));
    }

    #[test]
    fn session_writes_are_causally_chained_and_win_in_order() {
        let mut cluster = ClusterBuilder::<KvStore>::new(3)
            .etob(EtobConfig::batched(6))
            .deploy(&SimEngine::new());
        let mut session = cluster.session();
        let first = cluster.submit(&mut session, KvStore::put("k", "first"), 10);
        let second = cluster.submit(&mut session, KvStore::put("k", "second"), 12);
        assert_eq!(session.frontier(), Some(second));
        assert_ne!(first, second);
        cluster.run_until(2_000);
        // even inside one batch, the causal chain fixes the delivered order
        for p in cluster.replica_ids() {
            assert_eq!(cluster.state(p).unwrap().get("k"), Some("second"), "{p}");
        }
        let delivered = cluster.delivered(ProcessId::new(0)).expect("sim read");
        assert_eq!(delivered.len(), 2);
        assert_eq!(delivered[0].id, first);
        assert_eq!(delivered[1].deps, vec![first]);
        assert_eq!(cluster.read(&session).unwrap().get("k"), Some("second"));
    }

    #[test]
    fn strong_clusters_deploy_and_converge_on_the_simulator() {
        let mut cluster = ClusterBuilder::<Counter>::new(3)
            .consistency(Consistency::Strong)
            .deploy(&SimEngine::new());
        let mut session = cluster.session();
        cluster.submit(&mut session, Counter::add(5), 10);
        cluster.submit(&mut session, Counter::sub(2), 20);
        assert!(cluster.run_until_applied(2, 5_000));
        for p in cluster.replica_ids() {
            assert_eq!(cluster.state(p).unwrap().value(), 3);
        }
        let report = cluster.finish();
        assert_eq!(report.consistency, Consistency::Strong);
        assert_eq!(report.engine, EngineKind::Sim);
        assert!(report.all_converged());
        assert!(report.shards[0].snapshots_agree());
        assert_eq!(report.shards[0].updates_sent, 0);
    }

    #[test]
    fn reports_render_and_aggregate() {
        let mut cluster = ClusterBuilder::<KvStore>::new(2).deploy(&SimEngine::new());
        let mut session = cluster.session();
        cluster.submit(&mut session, KvStore::put("a", "1"), 10);
        cluster.run_until(1_500);
        let report = cluster.report();
        assert_eq!(report.total_ops_routed(), 1);
        assert_eq!(report.total_applied(), 2);
        assert!(report.converged_at().is_some());
        let rendered = format!("{report}");
        assert!(rendered.contains("eventual cluster on sim engine"));
        assert!(rendered.contains("shard 0"));
        let line = format!("{}", report.shards[0]);
        assert!(line.contains("1 ops"));
    }

    #[test]
    fn recovering_replicas_converge_at_both_consistency_levels() {
        use ec_sim::FailurePattern;
        for consistency in [Consistency::Eventual, Consistency::Strong] {
            let failures = FailurePattern::no_failures(3).with_crash_recovery(
                ProcessId::new(2),
                Time::new(60),
                Time::new(700),
            );
            let mut cluster = ClusterBuilder::<KvStore>::new(3)
                .consistency(consistency)
                .etob(EtobConfig::default().with_resend(12))
                .tob(ConsensusTobConfig::default().with_catch_up())
                .deploy(&SimEngine::new().failures(failures));
            let mut session = cluster.session_at(ProcessId::new(0));
            for k in 0..5u64 {
                cluster.submit(
                    &mut session,
                    KvStore::put(&format!("k{k}"), &format!("v{k}")),
                    30 + 40 * k,
                );
            }
            cluster.run_until(4_000);
            let report = cluster.report();
            assert!(
                report.shards[0].snapshots_agree(),
                "rejoined replica diverged at {consistency}"
            );
            assert_eq!(
                cluster.state(ProcessId::new(2)).unwrap().get("k4"),
                Some("v4"),
                "{consistency}"
            );
            assert_eq!(report.totals.crashes, 1);
            assert_eq!(report.totals.recoveries, 1);
        }
    }

    #[test]
    fn scripted_omega_lies_are_absorbed_after_the_window() {
        // p2 trusts the wrong leader for a finite window at Eventual; after
        // the lie ends it re-adopts the real leader's promotions and the
        // cluster converges as if nothing happened.
        let observers: ProcessSet = [2].into_iter().collect();
        let engine = SimEngine::new().omega_lie(40, 300, observers, ProcessId::new(2));
        let mut cluster = ClusterBuilder::<KvStore>::new(3).deploy(&engine);
        let mut session = cluster.session_at(ProcessId::new(0));
        cluster.submit(&mut session, KvStore::put("a", "1"), 50);
        cluster.submit(&mut session, KvStore::put("b", "2"), 120);
        cluster.run_until(2_000);
        let report = cluster.report();
        assert!(report.shards[0].snapshots_agree(), "lie must be absorbed");
        assert_eq!(
            cluster.state(ProcessId::new(2)).unwrap().get("b"),
            Some("2")
        );
    }

    #[test]
    fn eventual_clusters_survive_partitions_strong_ones_block() {
        let minority: ProcessSet = [0].into_iter().collect();
        let network = NetworkModel::fixed_delay(2).with_partition(
            Time::new(30),
            Time::new(600),
            PartitionSpec::isolate(minority, 3),
        );
        let probe = 550;

        let mut eventual =
            ClusterBuilder::<KvStore>::new(3).deploy(&SimEngine::new().network(network.clone()));
        let mut strong = ClusterBuilder::<KvStore>::new(3)
            .consistency(Consistency::Strong)
            .deploy(&SimEngine::new().network(network));
        for cluster in [&mut eventual, &mut strong] {
            let mut session = cluster.session_at(ProcessId::new(0));
            cluster.submit(&mut session, KvStore::put("k", "v"), 50);
        }
        eventual.run_until(2_500);
        strong.run_until(2_500);

        // the isolated leader-side replica serves under eventual consistency…
        assert!(eventual.applied_at(ProcessId::new(0), probe) >= 1);
        // …and is blocked under strong consistency (no Σ quorum)
        assert_eq!(strong.applied_at_all(probe), vec![0, 0, 0]);
        assert_eq!(
            strong.applied_at(ProcessId::new(0), probe),
            strong.applied_at_all(probe)[0]
        );
        // both converge after the heal
        assert!(eventual.report().all_converged());
        assert!(strong.report().all_converged());
        assert!(eventual.report().shards[0].divergences >= 1);
    }
}

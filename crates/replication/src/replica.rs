//! A generic replicated-service replica over any (eventual) total order
//! broadcast implementation.

use std::fmt;

use ec_core::types::{
    AppMessage, Compactable, DeliveredSequence, EtobBroadcast, EventualTotalOrderBroadcast,
    Instrumented, MsgId, Payload,
};
use ec_sim::{Algorithm, Context, ProcessId};

use crate::durable::{DurableOptions, DurableStore};
use crate::state_machine::StateMachine;

/// A client command submitted to a replica.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReplicaCommand {
    /// The state-machine command. Stored behind an [`Payload`] `Arc` so the
    /// broadcast layer's per-recipient fan-out and the thread runtime's
    /// channel sends share one buffer instead of deep-copying it.
    pub command: Payload,
    /// Identifiers of commands this one causally depends on (passed through
    /// to the broadcast layer as `C(m)`).
    pub deps: Vec<MsgId>,
    /// Explicit message identifier, or `None` to let the receiving replica
    /// assign one from its own counter.
    ///
    /// The `Cluster`/`Session` facade pre-assigns identifiers so client
    /// sessions can thread causal dependencies across commands without
    /// reaching into replica state. An explicit identifier must be unique in
    /// the run and must not collide with replica-assigned ones — within one
    /// deployment, either let every command be assigned automatically or
    /// route every command through the facade, not both.
    pub id: Option<MsgId>,
}

impl ReplicaCommand {
    /// A command with no declared causal dependencies.
    pub fn new(command: impl Into<Payload>) -> Self {
        ReplicaCommand {
            command: command.into(),
            deps: Vec::new(),
            id: None,
        }
    }

    /// A command with declared causal dependencies.
    pub fn with_deps(command: impl Into<Payload>, deps: Vec<MsgId>) -> Self {
        ReplicaCommand {
            command: command.into(),
            deps,
            id: None,
        }
    }

    /// Sets an explicit message identifier (see [`ReplicaCommand::id`]).
    pub fn with_id(mut self, id: MsgId) -> Self {
        self.id = Some(id);
        self
    }
}

impl From<Vec<u8>> for ReplicaCommand {
    fn from(command: Vec<u8>) -> Self {
        ReplicaCommand::new(command)
    }
}

impl From<&[u8]> for ReplicaCommand {
    fn from(command: &[u8]) -> Self {
        ReplicaCommand::new(command)
    }
}

impl From<&str> for ReplicaCommand {
    fn from(command: &str) -> Self {
        ReplicaCommand::new(command.as_bytes())
    }
}

impl From<String> for ReplicaCommand {
    fn from(command: String) -> Self {
        ReplicaCommand::new(command.into_bytes())
    }
}

/// The externally visible state of a replica, emitted every time the applied
/// command sequence changes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReplicaOutput {
    /// Number of commands currently applied.
    pub applied: usize,
    /// Canonical snapshot of the state machine after applying them.
    pub snapshot: Vec<u8>,
}

/// A replica: a deterministic state machine `S` fed by the delivered sequence
/// of a broadcast layer `B`.
///
/// With `B = EtobOmega` (Algorithm 5) this is an **eventually consistent**
/// replicated service that only needs Ω; with `B = ConsensusTob` it is a
/// **strongly consistent** one that needs Ω + Σ. The replica replays the full
/// delivered sequence whenever it changes, so divergence and convergence of
/// the broadcast layer translate directly into divergence and convergence of
/// replica snapshots.
///
/// ## Stable-prefix folding
///
/// When the broadcast layer compacts ([`Compactable::stable_base`] grows),
/// its delivered outputs shrink to the resident tail. The replica mirrors
/// the fold: the folded prefix's effect is absorbed into `base_state` (the
/// state machine at absolute index `base_applied`) and only the tail is
/// replayed on top, so replica memory tracks the broadcast layer's instead
/// of the full history. With compaction off, `base_applied` stays 0 and
/// this is exactly the classic full replay.
///
/// ## Durability
///
/// [`Replica::durable`] attaches a [`DurableStore`]: every delivered-tail
/// change is mirrored into the record log, periodic checkpoints snapshot
/// `base_state`, and on (re)start the replica recovers from disk and primes
/// the broadcast layer ([`Compactable::prime_recovery`]) so anti-entropy
/// only fetches the suffix missed while down. Recovery is **lazy** —
/// nothing touches the disk until `on_start` runs — so a pre-built spare
/// automaton recovers the state of the instance it replaces.
pub struct Replica<S: StateMachine, B: EventualTotalOrderBroadcast + Compactable + Instrumented> {
    broadcast: B,
    state: S,
    applied: usize,
    next_seq: u64,
    last_output: Option<ReplicaOutput>,
    /// State machine with exactly the folded prefix applied.
    base_state: S,
    /// Absolute length of the folded prefix baked into `base_state`.
    base_applied: usize,
    /// Resident delivered tail (the broadcast layer's last output).
    tail: Vec<AppMessage>,
    durable_options: Option<DurableOptions>,
    durable: Option<DurableStore>,
}

impl<S: StateMachine, B: EventualTotalOrderBroadcast + Compactable + Instrumented> Replica<S, B> {
    /// Wraps a broadcast layer.
    ///
    /// # Example
    ///
    /// A single eventually consistent KV replica over Algorithm 5 (run a
    /// whole group of them with [`ec_sim::WorldBuilder`], or a hash-sharded
    /// cluster with [`crate::shard::ShardedKv`]):
    ///
    /// ```
    /// use ec_core::etob_omega::{EtobConfig, EtobOmega};
    /// use ec_replication::{KvStore, Replica};
    /// use ec_sim::ProcessId;
    ///
    /// let replica: Replica<KvStore, EtobOmega> =
    ///     Replica::new(EtobOmega::new(ProcessId::new(0), EtobConfig::default()));
    /// assert_eq!(replica.applied(), 0);
    /// assert!(replica.state().is_empty());
    /// ```
    pub fn new(broadcast: B) -> Self {
        Replica {
            broadcast,
            state: S::default(),
            applied: 0,
            next_seq: 0,
            last_output: None,
            base_state: S::default(),
            base_applied: 0,
            tail: Vec::new(),
            durable_options: None,
            durable: None,
        }
    }

    /// Wraps a broadcast layer with durability: delivered state persists
    /// under `options.dir` and is recovered (lazily, at `on_start`) after a
    /// crash. Persistence is best-effort — an I/O failure degrades to the
    /// in-memory behavior of [`Replica::new`], never to a panic.
    pub fn durable(broadcast: B, options: DurableOptions) -> Self {
        let mut replica = Replica::new(broadcast);
        replica.durable_options = Some(options);
        replica
    }

    /// The current state machine.
    pub fn state(&self) -> &S {
        &self.state
    }

    /// Number of commands applied.
    pub fn applied(&self) -> usize {
        self.applied
    }

    /// The wrapped broadcast layer.
    pub fn broadcast_layer(&self) -> &B {
        &self.broadcast
    }

    /// Absolute length of the folded prefix baked into the base state.
    pub fn base_applied(&self) -> usize {
        self.base_applied
    }

    /// The attached durable store, once `on_start` has opened it.
    pub fn durable_store(&self) -> Option<&DurableStore> {
        self.durable.as_ref()
    }

    fn relay(
        &mut self,
        actions: ec_sim::Actions<B>,
        ctx: &mut Context<'_, Self>,
    ) -> Vec<DeliveredSequence> {
        for (to, msg) in actions.sends {
            ctx.send(to, msg);
        }
        // Timer requests of the broadcast layer are not relayed; the replica
        // owns the single timer chain (see ec-core's wrapper policy).
        actions.outputs
    }

    /// Recomputes `state` as `base_state` plus the resident tail and emits
    /// an output if the visible state changed.
    fn rebuild(&mut self, ctx: &mut Context<'_, Self>) {
        let mut state = self.base_state.clone();
        for m in &self.tail {
            state.apply(m.payload.as_ref());
        }
        self.state = state;
        self.emit_output(ctx);
    }

    /// Adopts a freshly delivered sequence as the resident tail.
    ///
    /// Deliveries almost always *extend* the previous tail — the broadcast
    /// layer only rewrites the prefix while Ω is unstable — so the common
    /// case applies just the new suffix to the live state. The previous
    /// implementation rebuilt from a clone of the base state on every
    /// delivery, replaying the whole tail each time: per-operation cost
    /// grew with the delivered history and dominated the E10 profile.
    fn adopt_tail(&mut self, new_tail: Vec<AppMessage>, ctx: &mut Context<'_, Self>) {
        let is_extension = new_tail.len() >= self.tail.len()
            && self.tail.iter().zip(&new_tail).all(|(a, b)| a.id == b.id);
        if !is_extension {
            // prefix rewrite: fall back to the full replay
            self.tail = new_tail;
            self.rebuild(ctx);
            return;
        }
        if new_tail.len() == self.tail.len() && self.last_output.is_some() {
            // identical sequence re-delivered — identifiers determine
            // payloads, so the visible state cannot have changed
            return;
        }
        for m in new_tail.iter().skip(self.tail.len()) {
            self.state.apply(m.payload.as_ref());
        }
        self.tail = new_tail;
        self.emit_output(ctx);
    }

    /// Emits a [`ReplicaOutput`] if the visible state changed since the
    /// last one, keeping `applied` in sync with the adopted tail.
    fn emit_output(&mut self, ctx: &mut Context<'_, Self>) {
        self.applied = self.base_applied + self.tail.len();
        let output = ReplicaOutput {
            applied: self.applied,
            snapshot: self.state.snapshot(),
        };
        if self.last_output.as_ref() != Some(&output) {
            // flight-record the newest applied command (one event per
            // visible state change, not per replayed tail entry)
            if let Some(m) = self.tail.last() {
                let (origin, seq) = (m.id.origin.index() as u32, m.id.seq);
                if let Some(recorder) = self.broadcast.recorder_mut() {
                    recorder.applied(origin, seq);
                }
            }
            self.last_output = Some(output.clone());
            ctx.output(output);
        }
    }

    /// Absorbs a broadcast-layer fold into the base state: the broadcast
    /// only folds a globally stable prefix, so the tail entries below the
    /// new stable base are final and can be applied permanently.
    ///
    /// Runs *before* any new tail is adopted: the stored tail always starts
    /// at `base_applied`, and the broadcast layer never folds and emits a
    /// delivered output in the same activation (folds happen on the promote
    /// timer, outputs on message receipt), so draining the prefix from the
    /// old tail is correct in every interleaving.
    fn reconcile_fold(&mut self) {
        let stable = usize::try_from(self.broadcast.stable_base()).unwrap_or(usize::MAX);
        if stable <= self.base_applied {
            return;
        }
        let drain = (stable - self.base_applied).min(self.tail.len());
        for m in self.tail.drain(..drain) {
            self.base_state.apply(m.payload.as_ref());
        }
        self.base_applied += drain;
    }

    /// Mirrors the current tail into the durable store and checkpoints when
    /// due. A no-op without a store or when nothing changed.
    fn persist(&mut self) {
        if self.durable.is_none() {
            return;
        }
        let base = self.base_applied as u64;
        let hash = self.broadcast.stable_hash();
        if let Some(store) = self.durable.as_mut() {
            store.record_tail(base, hash, &self.tail);
        }
        if self
            .durable
            .as_ref()
            .is_some_and(DurableStore::checkpoint_due)
        {
            let frontier = self.broadcast.stable_frontier();
            let state = self.base_state.snapshot();
            let own_seq = self.next_seq;
            if let Some(store) = self.durable.as_mut() {
                store.checkpoint(base, hash, &frontier, &state, &self.tail, own_seq);
            }
        }
    }

    /// Opens the durable store and, when the directory holds state, primes
    /// the broadcast layer and rebuilds from the checkpoint + logged tail.
    /// Failures at any stage degrade to a blank start (anti-entropy then
    /// refetches everything) — recovery never panics and never merges.
    fn recover(&mut self, ctx: &mut Context<'_, Self>) {
        let Some(options) = self.durable_options.as_ref() else {
            return;
        };
        let Ok((store, recovered)) = DurableStore::open(options) else {
            return;
        };
        self.durable = Some(store);
        let Some(rec) = recovered else {
            return;
        };
        // Never reuse a locally assigned sequence number from the previous
        // incarnation, even when the rest of the recovery is not adopted.
        self.next_seq = self.next_seq.max(rec.own_seq);
        for m in &rec.tail {
            if m.id.origin == ctx.me() {
                self.next_seq = self.next_seq.max(m.id.seq);
            }
        }
        let base_state = if rec.base == 0 {
            Some(S::default())
        } else {
            S::from_snapshot(&rec.state)
        };
        let Some(base_state) = base_state else {
            return;
        };
        if !self
            .broadcast
            .prime_recovery(rec.base, rec.hash, rec.frontier, rec.tail.clone())
        {
            return;
        }
        self.base_state = base_state;
        self.base_applied = usize::try_from(rec.base).unwrap_or(0);
        self.tail = rec.tail;
        self.rebuild(ctx);
    }

    fn drive<F>(&mut self, ctx: &mut Context<'_, Self>, f: F)
    where
        F: FnOnce(&mut B, &mut Context<'_, B>),
    {
        let mut actions = ec_sim::Actions::<B>::new();
        {
            let mut ictx =
                Context::new(ctx.me(), ctx.now(), ctx.n(), ctx.fd().clone(), &mut actions);
            f(&mut self.broadcast, &mut ictx);
        }
        let mut deliveries = self.relay(actions, ctx);
        self.reconcile_fold();
        // Only the newest delivered sequence matters (each one supersedes
        // the previous); taking it by value avoids cloning the whole tail.
        if let Some(last) = deliveries.pop() {
            self.adopt_tail(last, ctx);
        }
        self.persist();
    }
}

impl<S: StateMachine, B: EventualTotalOrderBroadcast + Compactable + Instrumented + fmt::Debug>
    fmt::Debug for Replica<S, B>
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Replica")
            .field("applied", &self.applied)
            .field("base_applied", &self.base_applied)
            .field("state", &self.state)
            .field("broadcast", &self.broadcast)
            .finish()
    }
}

impl<S: StateMachine, B: EventualTotalOrderBroadcast + Compactable + Instrumented> Algorithm
    for Replica<S, B>
{
    type Msg = B::Msg;
    type Input = ReplicaCommand;
    type Output = ReplicaOutput;
    type Fd = B::Fd;

    fn on_start(&mut self, ctx: &mut Context<'_, Self>) {
        self.recover(ctx);
        self.drive(ctx, |b, ictx| b.on_start(ictx));
        ctx.set_timer(3);
    }

    fn on_input(&mut self, input: ReplicaCommand, ctx: &mut Context<'_, Self>) {
        let id = match input.id {
            Some(id) => {
                // keep the local counter ahead of explicit ids so a later
                // auto-assigned id cannot collide with this one
                self.next_seq = self.next_seq.max(id.seq);
                id
            }
            None => {
                self.next_seq += 1;
                MsgId::new(ctx.me(), self.next_seq)
            }
        };
        // Persist the high-water mark *before* the command enters the
        // broadcast layer: a crash right after the send must not lead the
        // next incarnation to reuse this identifier.
        let next_seq = self.next_seq;
        if let Some(store) = self.durable.as_mut() {
            store.record_own_seq(next_seq);
        }
        let message = AppMessage::with_deps(id, input.command, input.deps);
        self.drive(ctx, |b, ictx| b.on_input(EtobBroadcast { message }, ictx));
    }

    fn on_message(&mut self, from: ProcessId, msg: B::Msg, ctx: &mut Context<'_, Self>) {
        self.drive(ctx, |b, ictx| b.on_message(from, msg, ictx));
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, Self>) {
        self.drive(ctx, |b, ictx| b.on_timer(ictx));
        ctx.set_timer(3);
    }

    fn wire_size(msg: &B::Msg) -> u64 {
        B::wire_size(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state_machine::KvStore;
    use ec_core::etob_omega::{EtobConfig, EtobOmega};
    use ec_core::tob_consensus::{ConsensusTob, ConsensusTobConfig};
    use ec_detectors::{omega::OmegaOracle, sigma::SigmaOracle, PairFd};
    use ec_sim::{FailurePattern, NetworkModel, PartitionSpec, ProcessSet, Time, WorldBuilder};

    type EventualReplica = Replica<KvStore, EtobOmega>;
    type StrongReplica = Replica<KvStore, ConsensusTob>;

    #[test]
    fn eventually_consistent_kv_replicas_converge() {
        let n = 4;
        let failures = FailurePattern::no_failures(n);
        let omega = OmegaOracle::stable_from_start(failures.clone());
        let mut world = WorldBuilder::new(n)
            .network(NetworkModel::fixed_delay(2))
            .failures(failures)
            .seed(7)
            .build_with(
                |p| -> EventualReplica { Replica::new(EtobOmega::new(p, EtobConfig::default())) },
                omega,
            );
        for k in 0..6u64 {
            world.schedule_input(
                ProcessId::new((k % 4) as usize),
                ReplicaCommand::new(KvStore::put(&format!("k{k}"), &format!("v{k}"))),
                10 + 10 * k,
            );
        }
        world.run_until(2_000);
        let snapshots: Vec<Vec<u8>> = world
            .process_ids()
            .map(|p| {
                world
                    .trace()
                    .last_output_of(p)
                    .expect("output")
                    .snapshot
                    .clone()
            })
            .collect();
        assert!(
            snapshots.windows(2).all(|w| w[0] == w[1]),
            "replicas diverged"
        );
        assert_eq!(world.algorithm(ProcessId::new(0)).applied(), 6);
        assert_eq!(
            world.algorithm(ProcessId::new(0)).state().get("k3"),
            Some("v3")
        );
    }

    #[test]
    fn eventual_replicas_keep_serving_in_the_leaders_minority_partition() {
        let n = 5;
        let failures = FailurePattern::no_failures(n);
        let omega = OmegaOracle::stable_from_start(failures.clone());
        let minority: ProcessSet = [0, 1].into_iter().collect();
        let network = NetworkModel::fixed_delay(2).with_partition(
            Time::new(50),
            Time::new(900),
            PartitionSpec::isolate(minority, n),
        );
        let mut world = WorldBuilder::new(n)
            .network(network)
            .failures(failures)
            .seed(8)
            .build_with(
                |p| -> EventualReplica { Replica::new(EtobOmega::new(p, EtobConfig::default())) },
                omega,
            );
        for k in 0..4u64 {
            world.schedule_input(
                ProcessId::new((k % 2) as usize),
                ReplicaCommand::new(KvStore::put(&format!("k{k}"), "v")),
                100 + 20 * k,
            );
        }
        world.run_until(2_500);
        let history = world.trace().output_history();
        // during the partition, the leader-side replica p1 made progress
        let during = history
            .value_at(ProcessId::new(1), Time::new(850))
            .map(|o| o.applied)
            .unwrap_or(0);
        assert!(
            during >= 1,
            "eventually consistent replica must serve during the partition"
        );
        // after the heal everyone has everything
        for p in world.process_ids() {
            assert_eq!(world.algorithm(p).applied(), 4, "{p}");
        }
    }

    #[test]
    fn strongly_consistent_replicas_block_in_a_minority_partition() {
        let n = 5;
        let failures = FailurePattern::no_failures(n);
        let fd = PairFd::new(
            OmegaOracle::stable_from_start(failures.clone()),
            SigmaOracle::majority(failures.clone()),
        );
        let minority: ProcessSet = [0, 1].into_iter().collect();
        let network = NetworkModel::fixed_delay(2).with_partition(
            Time::new(50),
            Time::new(900),
            PartitionSpec::isolate(minority, n),
        );
        let mut world = WorldBuilder::new(n)
            .network(network)
            .failures(failures)
            .seed(8)
            .build_with(
                |p| -> StrongReplica {
                    Replica::new(ConsensusTob::new(p, ConsensusTobConfig::default()))
                },
                fd,
            );
        for k in 0..4u64 {
            world.schedule_input(
                ProcessId::new((k % 2) as usize),
                ReplicaCommand::new(KvStore::put(&format!("k{k}"), "v")),
                100 + 20 * k,
            );
        }
        world.run_until(2_500);
        let history = world.trace().output_history();
        // during the partition, nothing new is applied anywhere
        for p in world.process_ids() {
            let during = history
                .value_at(p, Time::new(850))
                .map(|o| o.applied)
                .unwrap_or(0);
            assert_eq!(
                during, 0,
                "strongly consistent replica {p} applied during the partition"
            );
        }
        // after the heal everything commits
        for p in world.process_ids() {
            assert_eq!(world.algorithm(p).applied(), 4, "{p}");
        }
    }

    #[test]
    fn accessors_and_debug() {
        let replica: EventualReplica =
            Replica::new(EtobOmega::new(ProcessId::new(0), EtobConfig::default()));
        assert_eq!(replica.applied(), 0);
        assert!(replica.state().is_empty());
        assert!(replica.broadcast_layer().delivered().is_empty());
        assert!(format!("{replica:?}").contains("Replica"));
        let cmd = ReplicaCommand::with_deps(b"x".to_vec(), vec![MsgId::new(ProcessId::new(0), 1)]);
        assert_eq!(cmd.deps.len(), 1);
    }

    #[test]
    fn commands_convert_from_bytes_and_strings() {
        let from_vec: ReplicaCommand = KvStore::put("a", "1").into();
        let from_str: ReplicaCommand = "put a 1".into();
        let from_string: ReplicaCommand = String::from("put a 1").into();
        let from_slice: ReplicaCommand = b"put a 1".as_slice().into();
        assert_eq!(from_vec, from_str);
        assert_eq!(from_str, from_string);
        assert_eq!(from_string, from_slice);
        assert!(from_str.id.is_none() && from_str.deps.is_empty());
    }

    #[test]
    fn explicit_ids_are_honored_and_keep_the_counter_ahead() {
        let n = 2;
        let failures = FailurePattern::no_failures(n);
        let omega = OmegaOracle::stable_from_start(failures.clone());
        let mut world = WorldBuilder::new(n)
            .network(NetworkModel::fixed_delay(2))
            .failures(failures)
            .build_with(
                |p| -> EventualReplica { Replica::new(EtobOmega::new(p, EtobConfig::default())) },
                omega,
            );
        let explicit = MsgId::new(ProcessId::new(0), 7);
        world.schedule_input(
            ProcessId::new(0),
            ReplicaCommand::new(KvStore::put("a", "1")).with_id(explicit),
            10,
        );
        // a later auto-assigned command must not collide with seq 7
        world.schedule_input(
            ProcessId::new(0),
            ReplicaCommand::new(KvStore::put("b", "2")),
            50,
        );
        world.run_until(2_000);
        let delivered = world
            .algorithm(ProcessId::new(0))
            .broadcast_layer()
            .delivered();
        let ids: Vec<MsgId> = delivered.iter().map(|m| m.id).collect();
        assert!(ids.contains(&explicit));
        assert_eq!(ids.len(), 2);
        assert!(ids[0] != ids[1], "auto id must not collide: {ids:?}");
        assert_eq!(
            world.algorithm(ProcessId::new(1)).state().get("b"),
            Some("2")
        );
    }
}

//! The socket-backed deployment: real replicas over loopback TCP.
//!
//! Where [`crate::SimEngine`] schedules handlers inside a deterministic
//! simulator and [`crate::ThreadEngine`] runs them on threads joined by
//! in-memory channels, this module runs each replica as an independent
//! node that speaks a hand-rolled length-prefixed binary codec over real
//! TCP sockets (loopback, ephemeral ports). The same [`ec_sim::Algorithm`]
//! implementations run unmodified: the node event loop drives them through
//! [`ec_runtime::run_handler`], heartbeats travel over the same
//! connections as protocol traffic, and the driver (the facade) talks to
//! each node over a dedicated control connection.
//!
//! Layering:
//!
//! * [`codec`] — the frame format: u32 length prefix + tagged body, typed
//!   [`codec::DecodeError`] on anything malformed;
//! * `transport` (crate-private) — blocking frame I/O over `TcpStream`s,
//!   peer links with reconnect, and the reader threads that turn inbound
//!   frames into node events (counting, never propagating, malformed
//!   input);
//! * `node` (crate-private) — the node event loop and the cluster of
//!   nodes the engine deploys, including crash/restart and the shutdown
//!   goodbye protocol.

pub mod codec;

pub(crate) mod node;
pub(crate) mod transport;

//! Socket-backed replica nodes and the cluster of them the net engine
//! deploys.
//!
//! Each replica runs as an independent node: its own event loop thread,
//! its own loopback `TcpListener`, outbound [`PeerLink`]s to every peer,
//! and one *control* connection to the driver (the facade) carrying
//! inputs inbound and outputs outbound. Protocol messages and failure-
//! detector heartbeats travel over the same peer connections, encoded by
//! the [`crate::net::codec`] frame format, so every byte the algorithms
//! exchange really crosses a socket.
//!
//! The event loop mirrors `ec-runtime`'s process loop step for step — it
//! drives the same [`ec_sim::Algorithm`] implementations through
//! [`ec_runtime::run_handler`] with a per-node heartbeat Ω — which is what
//! makes the engines interchangeable behind the facade.
//!
//! Teardown protocol: the driver sends a `Shutdown` frame on each control
//! connection; a node drains its queue, flushes its last outputs, echoes
//! `Shutdown` as a goodbye, and returns its replica for harvest. Crashed
//! nodes (`Crash` frame) return silently and keep their listener accepting
//! — inbound traffic for a dead node is swallowed, like sends to a crashed
//! process in the model. `restart` starts a fresh incarnation behind the
//! same address; reader threads parked on connections of dead incarnations
//! are left to exit with the process (they hold no locks).

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;

use ec_core::types::{Compactable, EventualTotalOrderBroadcast, Instrumented};
use ec_detectors::{HeartbeatMsg, HeartbeatOmega};
use ec_runtime::{run_handler, sleep_ms, RuntimeConfig, Stopwatch};
use ec_sim::{Actions, Algorithm, Metrics, ProcessId};

use crate::net::codec::{decode_body, encode_body, hello_body, Frame, WireCodec, DRIVER, SCRAPER};
use crate::net::transport::{read_frame, write_frame, PeerLink, ReadError};
use crate::replica::{Replica, ReplicaCommand, ReplicaOutput};
use crate::state_machine::StateMachine;

/// How long [`NetCluster::shutdown`] waits for the goodbye frames of live
/// nodes before falling back to the stop flag.
const GOODBYE_WAIT_MS: u64 = 2_000;

/// Locks a mutex, recovering the data from a poisoned lock (a panicked
/// node thread must not cascade into the driver).
fn locked<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Unwraps an I/O result the net engine cannot exist without (binding a
/// loopback listener, dialing a control connection at deployment).
/// Loopback socket setup failing means a misconfigured host; report it
/// through the same assert convention the builders use for misuse.
fn io_must<T>(what: &str, result: io::Result<T>) -> T {
    match result {
        Ok(value) => value,
        Err(err) => {
            let detail = format!("net engine could not {what}: {err}");
            assert!(detail.is_empty(), "{detail}");
            std::process::abort()
        }
    }
}

/// What the connection reader threads feed a node's event loop.
enum NetEvent<M> {
    /// A broadcast-layer message, with the frame's on-wire byte count.
    App {
        from: ProcessId,
        msg: M,
        wire_len: u64,
    },
    /// A failure-detector heartbeat.
    Heartbeat { from: ProcessId, msg: HeartbeatMsg },
    /// A client command from the driver.
    Input(ReplicaCommand),
    /// A telemetry scrape: render the live metrics exposition and write it
    /// back over `reply`.
    Stats {
        /// The scrape connection to answer on.
        reply: TcpStream,
    },
    /// Stop taking steps, keep state for harvest, send no goodbye.
    Crash,
    /// Stop, flush outputs, echo a goodbye frame.
    Shutdown,
}

/// The current incarnation's event sender. Readers re-lock per frame, so
/// swapping the sender (at restart) redirects live connections to the new
/// incarnation without reconnecting.
type Inbox<M> = Arc<Mutex<Option<Sender<NetEvent<M>>>>>;

/// The node-side write end of the control connection, plus the frames
/// queued before the driver connected.
struct ControlOut {
    stream: Option<TcpStream>,
    pending: Vec<Vec<u8>>,
}

type ControlSlot = Arc<Mutex<ControlOut>>;

/// State shared between the driver and every node/reader thread.
struct NetShared {
    outputs: Mutex<Vec<(ProcessId, u64, ReplicaOutput)>>,
    metrics: Mutex<Metrics>,
    malformed: AtomicU64,
    stopwatch: Stopwatch,
    stop: AtomicBool,
}

/// How a node derives the failure-detector value its algorithm queries
/// from the heartbeat module's current leader estimate (the socket-engine
/// twin of `ec-runtime`'s derive hook).
pub(crate) type NetFdDerive<F> = Arc<dyn Fn(ProcessId, usize) -> F + Send + Sync>;

type NetFactory<S, B> = Arc<dyn Fn(ProcessId) -> Replica<S, B> + Send + Sync>;

/// Driver-side slots the node threads deposit their final replicas into.
type FinalSlots<S, B> = Arc<Mutex<Vec<Option<Replica<S, B>>>>>;

/// The per-node handles that survive restarts: the listen address, the
/// inbox live connections feed, and the control write end.
struct NodeSlot<M> {
    addr: SocketAddr,
    inbox: Inbox<M>,
    control: ControlSlot,
}

/// Everything a stopped cluster hands to the engine layer.
pub(crate) struct NetFinal<S, B>
where
    S: StateMachine,
    B: EventualTotalOrderBroadcast + Compactable + Instrumented,
{
    /// Final replica of each node's last incarnation (crashed incarnations
    /// are overwritten by their restart).
    pub final_states: Vec<Option<Replica<S, B>>>,
    /// Outputs as `(replica, elapsed_ms, output)`, stamped at driver
    /// receipt.
    pub outputs: Vec<(ProcessId, u64, ReplicaOutput)>,
    /// Application-message counters; `bytes_sent` counts actual frame
    /// bytes put on the wire.
    pub metrics: Metrics,
}

/// A group of socket-backed replica nodes plus the driver-side plumbing to
/// reach them: one control connection, goodbye flag and reader thread per
/// node.
pub(crate) struct NetCluster<S, B>
where
    S: StateMachine + Send + 'static,
    B: EventualTotalOrderBroadcast + Compactable + Instrumented + Send + 'static,
    B::Msg: WireCodec + Send,
{
    n: usize,
    config: RuntimeConfig,
    shared: Arc<NetShared>,
    slots: Vec<NodeSlot<B::Msg>>,
    node_handles: Vec<Option<JoinHandle<()>>>,
    acceptor_handles: Vec<JoinHandle<()>>,
    final_states: FinalSlots<S, B>,
    factory: NetFactory<S, B>,
    derive: NetFdDerive<B::Fd>,
    control_streams: Vec<Option<TcpStream>>,
    goodbyes: Vec<Arc<AtomicBool>>,
    down: Vec<bool>,
}

impl<S, B> std::fmt::Debug for NetCluster<S, B>
where
    S: StateMachine + Send + 'static,
    B: EventualTotalOrderBroadcast + Compactable + Instrumented + Send + 'static,
    B::Msg: WireCodec + Send,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetCluster")
            .field("n", &self.n)
            .field("down", &self.down)
            .finish_non_exhaustive()
    }
}

impl<S, B> NetCluster<S, B>
where
    S: StateMachine + Send + 'static,
    B: EventualTotalOrderBroadcast + Compactable + Instrumented + Send + 'static,
    B::Msg: WireCodec + Send,
{
    /// Binds one loopback listener per node, starts the acceptor, node and
    /// control-reader threads, and returns once every node is reachable.
    pub(crate) fn launch<F, D>(n: usize, config: RuntimeConfig, factory: F, derive: D) -> Self
    where
        F: Fn(ProcessId) -> Replica<S, B> + Send + Sync + 'static,
        D: Fn(ProcessId, usize) -> B::Fd + Send + Sync + 'static,
    {
        assert!(n >= 2, "the system model requires at least two processes");
        let shared = Arc::new(NetShared {
            outputs: Mutex::new(Vec::new()),
            metrics: Mutex::new(Metrics::new(n)),
            malformed: AtomicU64::new(0),
            stopwatch: Stopwatch::start(),
            stop: AtomicBool::new(false),
        });
        let factory: NetFactory<S, B> = Arc::new(factory);
        let derive: NetFdDerive<B::Fd> = Arc::new(derive);

        let listeners: Vec<TcpListener> = (0..n)
            .map(|_| {
                io_must(
                    "bind a loopback listener",
                    TcpListener::bind(("127.0.0.1", 0)),
                )
            })
            .collect();
        let slots: Vec<NodeSlot<B::Msg>> = listeners
            .iter()
            .map(|listener| NodeSlot {
                addr: io_must("read a listener address", listener.local_addr()),
                inbox: Arc::new(Mutex::new(None)),
                control: Arc::new(Mutex::new(ControlOut {
                    stream: None,
                    pending: Vec::new(),
                })),
            })
            .collect();
        let addrs: Vec<SocketAddr> = slots.iter().map(|slot| slot.addr).collect();

        let acceptor_handles: Vec<JoinHandle<()>> = listeners
            .into_iter()
            .zip(slots.iter())
            .map(|(listener, slot)| {
                let inbox = Arc::clone(&slot.inbox);
                let control = Arc::clone(&slot.control);
                let shared_ref = Arc::clone(&shared);
                std::thread::spawn(move || accept_loop(listener, inbox, control, shared_ref))
            })
            .collect();

        let mut cluster = NetCluster {
            n,
            config,
            shared,
            slots,
            node_handles: (0..n).map(|_| None).collect(),
            acceptor_handles,
            final_states: Arc::new(Mutex::new((0..n).map(|_| None).collect())),
            factory,
            derive,
            control_streams: (0..n).map(|_| None).collect(),
            goodbyes: (0..n).map(|_| Arc::new(AtomicBool::new(false))).collect(),
            down: vec![false; n],
        };
        for i in 0..n {
            cluster.start_node(ProcessId::new(i), &addrs);
        }
        for i in 0..n {
            cluster.dial_control(ProcessId::new(i));
        }
        cluster
    }

    /// Starts one incarnation of node `p`: a fresh inbox channel, fresh
    /// peer links, and a thread running the event loop.
    fn start_node(&mut self, p: ProcessId, addrs: &[SocketAddr]) {
        let (sender, receiver) = mpsc::channel::<NetEvent<B::Msg>>();
        if let Some(slot) = self.slots.get(p.index()) {
            *locked(&slot.inbox) = Some(sender);
        }
        // one link per destination, self included: algorithms send to
        // themselves (e.g. the leader delivering its own sequence), and
        // those frames loop through the node's own listener like any other
        let links: Vec<PeerLink> = addrs
            .iter()
            .map(|addr| PeerLink::new(p.index() as u32, *addr))
            .collect();
        let control = self
            .slots
            .get(p.index())
            .map(|slot| Arc::clone(&slot.control));
        let Some(control) = control else { return };
        let replica = (self.factory)(p);
        let shared = Arc::clone(&self.shared);
        let derive = Arc::clone(&self.derive);
        let final_states = Arc::clone(&self.final_states);
        let config = self.config;
        let n = self.n;
        let handle = std::thread::spawn(move || {
            let replica = node_loop(
                p, n, replica, receiver, links, shared, config, derive, control,
            );
            if let Some(slot) = locked(&final_states).get_mut(p.index()) {
                *slot = Some(replica);
            }
        });
        if let Some(entry) = self.node_handles.get_mut(p.index()) {
            *entry = Some(handle);
        }
    }

    /// Dials the control connection of node `p` and starts the driver-side
    /// reader that records its outputs and goodbye.
    fn dial_control(&mut self, p: ProcessId) {
        let Some(addr) = self.slots.get(p.index()).map(|slot| slot.addr) else {
            return;
        };
        let mut stream = io_must("dial a control connection", TcpStream::connect(addr));
        let _ = stream.set_nodelay(true);
        io_must(
            "greet over the control connection",
            write_frame(&mut stream, &hello_body(DRIVER)),
        );
        let reader = io_must("clone the control connection", stream.try_clone());
        let goodbye = Arc::new(AtomicBool::new(false));
        let shared = Arc::clone(&self.shared);
        let flag = Arc::clone(&goodbye);
        std::thread::spawn(move || drain_control::<B::Msg>(reader, p, shared, flag));
        if let Some(entry) = self.control_streams.get_mut(p.index()) {
            *entry = Some(stream);
        }
        if let Some(entry) = self.goodbyes.get_mut(p.index()) {
            *entry = goodbye;
        }
    }

    /// The listen address of node `p` (tests dial it to inject raw frames).
    pub(crate) fn addr(&self, p: ProcessId) -> Option<SocketAddr> {
        self.slots.get(p.index()).map(|slot| slot.addr)
    }

    /// Submits a client command to node `p` over its control connection.
    pub(crate) fn submit(&mut self, p: ProcessId, command: ReplicaCommand) {
        let body = encode_body::<B::Msg>(&Frame::Input(command));
        if let Some(Some(stream)) = self.control_streams.get_mut(p.index()) {
            // a dead node swallows inputs, like the model's crashed process
            let _ = write_frame(stream, &body);
        }
    }

    /// Crashes node `p`: its event loop stops and its state is harvested,
    /// but its listener keeps accepting (and swallowing) peer traffic.
    pub(crate) fn crash(&mut self, p: ProcessId) {
        let body = encode_body::<B::Msg>(&Frame::Crash);
        if let Some(Some(stream)) = self.control_streams.get_mut(p.index()) {
            let _ = write_frame(stream, &body);
        }
        if let Some(handle) = self.node_handles.get_mut(p.index()).and_then(Option::take) {
            let _ = handle.join();
        }
        if let Some(flag) = self.down.get_mut(p.index()) {
            *flag = true;
        }
    }

    /// Restarts a crashed node as a fresh incarnation (empty replica state;
    /// the broadcast layer's anti-entropy re-fills it from the peers).
    /// Returns `false` if `p` is not down.
    pub(crate) fn restart(&mut self, p: ProcessId) -> bool {
        if !self.down.get(p.index()).copied().unwrap_or(false) {
            return false;
        }
        // reset the control plumbing of the dead incarnation
        if let Some(slot) = self.slots.get(p.index()) {
            let mut control = locked(&slot.control);
            control.stream = None;
            control.pending = Vec::new();
        }
        if let Some(entry) = self.control_streams.get_mut(p.index()) {
            *entry = None;
        }
        let addrs: Vec<SocketAddr> = self.slots.iter().map(|slot| slot.addr).collect();
        self.start_node(p, &addrs);
        self.dial_control(p);
        if let Some(flag) = self.down.get_mut(p.index()) {
            *flag = false;
        }
        true
    }

    /// The most recent output of node `p`, observed live.
    pub(crate) fn latest_output_of(&self, p: ProcessId) -> Option<ReplicaOutput> {
        locked(&self.shared.outputs)
            .iter()
            .rev()
            .find(|(q, _, _)| *q == p)
            .map(|(_, _, out)| out.clone())
    }

    /// A snapshot of every `(replica, elapsed_ms, output)` so far.
    pub(crate) fn outputs_so_far(&self) -> Vec<(ProcessId, u64, ReplicaOutput)> {
        locked(&self.shared.outputs).clone()
    }

    /// A snapshot of the message counters so far.
    pub(crate) fn metrics(&self) -> Metrics {
        locked(&self.shared.metrics).clone()
    }

    /// Frames rejected as malformed so far, across all connections.
    pub(crate) fn malformed_frames(&self) -> u64 {
        self.shared.malformed.load(Ordering::SeqCst)
    }

    /// Milliseconds since the cluster was launched.
    pub(crate) fn elapsed_ms(&self) -> u64 {
        self.shared.stopwatch.elapsed_ms()
    }

    /// Scrapes the live metrics exposition of node `p` over a fresh
    /// connection: `Hello(SCRAPER)`, one `StatsRequest`, one `StatsText`
    /// reply. `None` if the node is down or unreachable.
    pub(crate) fn scrape(&self, p: ProcessId) -> Option<String> {
        if self.down.get(p.index()).copied().unwrap_or(true) {
            return None;
        }
        let addr = self.addr(p)?;
        let mut stream = TcpStream::connect(addr).ok()?;
        let _ = stream.set_nodelay(true);
        stream
            .set_read_timeout(Some(std::time::Duration::from_millis(GOODBYE_WAIT_MS)))
            .ok()?;
        write_frame(&mut stream, &hello_body(SCRAPER)).ok()?;
        write_frame(&mut stream, &encode_body::<B::Msg>(&Frame::StatsRequest)).ok()?;
        let body = read_frame(&mut stream).ok()?;
        match decode_body::<B::Msg>(&body) {
            Ok(Frame::StatsText(text)) => String::from_utf8(text).ok(),
            _ => None,
        }
    }

    /// Stops every node (goodbye protocol first, stop flag as backstop),
    /// joins their threads and harvests the final states.
    pub(crate) fn shutdown(mut self) -> NetFinal<S, B> {
        let goodbye_body = encode_body::<B::Msg>(&Frame::Shutdown);
        for i in 0..self.n {
            if self.down.get(i).copied().unwrap_or(true) {
                continue;
            }
            if let Some(Some(stream)) = self.control_streams.get_mut(i) {
                let _ = write_frame(stream, &goodbye_body);
            }
        }
        // wait (bounded) for the goodbyes so in-flight outputs drain
        let give_up = self.shared.stopwatch.elapsed_ms() + GOODBYE_WAIT_MS;
        loop {
            let all_done = self
                .goodbyes
                .iter()
                .zip(self.down.iter())
                .all(|(goodbye, down)| *down || goodbye.load(Ordering::SeqCst));
            if all_done || self.shared.stopwatch.elapsed_ms() >= give_up {
                break;
            }
            sleep_ms(2);
        }
        self.shared.stop.store(true, Ordering::SeqCst);
        for handle in &mut self.node_handles {
            if let Some(handle) = handle.take() {
                let _ = handle.join();
            }
        }
        // unblock the acceptors with one dummy connection each
        for slot in &self.slots {
            let _ = TcpStream::connect(slot.addr);
        }
        for handle in self.acceptor_handles {
            let _ = handle.join();
        }
        self.control_streams.clear();
        NetFinal {
            final_states: std::mem::take(&mut *locked(&self.final_states)),
            outputs: std::mem::take(&mut *locked(&self.shared.outputs)),
            metrics: locked(&self.shared.metrics).clone(),
        }
    }
}

/// Accepts inbound connections for one node until the stop flag is set,
/// handing each to its own reader thread.
fn accept_loop<M: WireCodec + Send + 'static>(
    listener: TcpListener,
    inbox: Inbox<M>,
    control: ControlSlot,
    shared: Arc<NetShared>,
) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
                let inbox = Arc::clone(&inbox);
                let control = Arc::clone(&control);
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || serve_connection(stream, inbox, control, shared));
            }
            Err(_) => return,
        }
    }
}

/// Reads one frame and decodes it, counting malformed input. `None` ends
/// the connection (I/O error, EOF, or malformed bytes).
fn next_frame<M: WireCodec>(stream: &mut TcpStream, shared: &NetShared) -> Option<(Frame<M>, u64)> {
    match read_frame(stream) {
        Ok(body) => match decode_body::<M>(&body) {
            Ok(frame) => Some((frame, 4 + body.len() as u64)),
            Err(_) => {
                shared.malformed.fetch_add(1, Ordering::SeqCst);
                None
            }
        },
        Err(ReadError::Malformed(_)) => {
            shared.malformed.fetch_add(1, Ordering::SeqCst);
            None
        }
        Err(ReadError::Io(_)) => None,
    }
}

/// Serves one inbound connection at a node: expects a `Hello`, then feeds
/// decoded frames to the node's current inbox. Closes (counting it as
/// malformed) on any frame the node side must never receive.
fn serve_connection<M: WireCodec>(
    mut stream: TcpStream,
    inbox: Inbox<M>,
    control: ControlSlot,
    shared: Arc<NetShared>,
) {
    let _ = stream.set_nodelay(true);
    match next_frame::<M>(&mut stream, &shared) {
        Some((Frame::Hello { from }, _)) => {
            if from == DRIVER {
                if let Ok(write_end) = stream.try_clone() {
                    install_control(&control, write_end);
                }
            }
        }
        Some(_) => {
            shared.malformed.fetch_add(1, Ordering::SeqCst);
            return;
        }
        None => return,
    }
    loop {
        let event = match next_frame::<M>(&mut stream, &shared) {
            Some((Frame::App { from, msg }, wire_len)) => NetEvent::App {
                from,
                msg,
                wire_len,
            },
            Some((Frame::Heartbeat { from, msg }, _)) => NetEvent::Heartbeat { from, msg },
            Some((Frame::Input(command), _)) => NetEvent::Input(command),
            Some((Frame::Crash, _)) => NetEvent::Crash,
            Some((Frame::Shutdown, _)) => NetEvent::Shutdown,
            Some((Frame::StatsRequest, _)) => match stream.try_clone() {
                Ok(reply) => NetEvent::Stats { reply },
                Err(_) => return,
            },
            Some((Frame::Hello { .. } | Frame::Output(_) | Frame::StatsText(_), _)) => {
                shared.malformed.fetch_add(1, Ordering::SeqCst);
                return;
            }
            None => return,
        };
        // re-read the sender every frame: a restart swaps in the new
        // incarnation's inbox, a dead incarnation swallows the event
        let delivered = match locked(&inbox).as_ref() {
            Some(sender) => sender.send(event).is_ok(),
            None => false,
        };
        let _ = delivered;
    }
}

/// Installs the node-side write end of the control connection and flushes
/// the outputs queued while no driver was connected.
fn install_control(control: &ControlSlot, mut stream: TcpStream) {
    let mut slot = locked(control);
    let queued = std::mem::take(&mut slot.pending);
    for body in queued {
        if write_frame(&mut stream, &body).is_err() {
            return;
        }
    }
    slot.stream = Some(stream);
}

/// Writes a frame to the driver, queueing it if the driver has not
/// connected yet (or its connection just broke).
fn push_control(control: &ControlSlot, body: Vec<u8>) {
    let mut slot = locked(control);
    match slot.stream.as_mut() {
        Some(stream) => {
            if write_frame(stream, &body).is_err() {
                slot.stream = None;
                slot.pending.push(body);
            }
        }
        None => slot.pending.push(body),
    }
}

/// Driver-side reader of one control connection: records outputs as they
/// arrive (stamped with receipt time) and raises the goodbye flag on the
/// node's final `Shutdown` echo.
fn drain_control<M: WireCodec>(
    mut stream: TcpStream,
    p: ProcessId,
    shared: Arc<NetShared>,
    goodbye: Arc<AtomicBool>,
) {
    loop {
        match next_frame::<M>(&mut stream, &shared) {
            Some((Frame::Output(output), _)) => {
                let elapsed = shared.stopwatch.elapsed_ms();
                locked(&shared.outputs).push((p, elapsed, output));
            }
            Some((Frame::Shutdown, _)) => {
                goodbye.store(true, Ordering::SeqCst);
                return;
            }
            Some(_) => {
                shared.malformed.fetch_add(1, Ordering::SeqCst);
                return;
            }
            None => return,
        }
    }
}

/// Sends the heartbeat module's outbound messages over the peer links
/// (heartbeat traffic is not counted in the application metrics, matching
/// `ec-runtime`).
fn send_heartbeats<M: WireCodec>(
    me: ProcessId,
    actions: Actions<HeartbeatOmega>,
    links: &mut [PeerLink],
) {
    for (to, msg) in actions.sends {
        let frame: Frame<M> = Frame::Heartbeat { from: me, msg };
        let body = encode_body(&frame);
        if let Some(link) = links.get_mut(to.index()) {
            let _ = link.send(&body);
        }
    }
}

/// Dispatches a replica handler's actions: encodes and sends each message
/// over the peer links (counting actual frame bytes), and ships outputs to
/// the driver over the control connection.
fn dispatch_replica<S, B>(
    me: ProcessId,
    actions: Actions<Replica<S, B>>,
    links: &mut [PeerLink],
    shared: &NetShared,
    control: &ControlSlot,
) where
    S: StateMachine,
    B: EventualTotalOrderBroadcast + Compactable + Instrumented,
    B::Msg: WireCodec,
{
    let sent = actions.sends.len();
    let mut wire_bytes = 0u64;
    for (to, msg) in actions.sends {
        let body = encode_body(&Frame::App { from: me, msg });
        if let Some(link) = links.get_mut(to.index()) {
            if let Some(wire_len) = link.send(&body) {
                wire_bytes += wire_len;
            }
        }
    }
    {
        let mut metrics = locked(&shared.metrics);
        for _ in 0..sent {
            metrics.record_send(me);
        }
        metrics.bytes_sent += wire_bytes;
        metrics.outputs += actions.outputs.len() as u64;
    }
    for output in actions.outputs {
        push_control(control, encode_body::<B::Msg>(&Frame::Output(output)));
    }
    // timer requests are satisfied by the periodic tick
}

/// The node event loop: `ec-runtime`'s process loop over sockets. Returns
/// the final replica for harvest.
#[allow(clippy::too_many_arguments)]
fn node_loop<S, B>(
    me: ProcessId,
    n: usize,
    mut replica: Replica<S, B>,
    receiver: Receiver<NetEvent<B::Msg>>,
    mut links: Vec<PeerLink>,
    shared: Arc<NetShared>,
    config: RuntimeConfig,
    derive: NetFdDerive<B::Fd>,
    control: ControlSlot,
) -> Replica<S, B>
where
    S: StateMachine,
    B: EventualTotalOrderBroadcast + Compactable + Instrumented,
    B::Msg: WireCodec,
{
    let mut omega = HeartbeatOmega::new(me, n, config.heartbeat);
    let mut tick: u64 = 0;

    let hb_actions = run_handler(&mut omega, me, n, (), tick, |a, ctx| a.on_start(ctx));
    send_heartbeats::<B::Msg>(me, hb_actions, &mut links);
    let fd = derive(omega.leader(), n);
    let app_actions = run_handler(&mut replica, me, n, fd, tick, |a, ctx| a.on_start(ctx));
    dispatch_replica(me, app_actions, &mut links, &shared, &control);

    loop {
        if shared.stop.load(Ordering::SeqCst) {
            return replica;
        }
        match receiver.recv_timeout(config.tick) {
            Ok(NetEvent::Crash) => return replica,
            Ok(NetEvent::Shutdown) => {
                push_control(&control, encode_body::<B::Msg>(&Frame::Shutdown));
                return replica;
            }
            Ok(NetEvent::Heartbeat { from, msg }) => {
                let actions = run_handler(&mut omega, me, n, (), tick, |a, ctx| {
                    a.on_message(from, msg, ctx)
                });
                send_heartbeats::<B::Msg>(me, actions, &mut links);
            }
            Ok(NetEvent::App {
                from,
                msg,
                wire_len,
            }) => {
                {
                    let mut metrics = locked(&shared.metrics);
                    metrics.messages_delivered += 1;
                    metrics.bytes_delivered += wire_len;
                }
                let fd = derive(omega.leader(), n);
                let actions = run_handler(&mut replica, me, n, fd, tick, |a, ctx| {
                    a.on_message(from, msg, ctx)
                });
                dispatch_replica(me, actions, &mut links, &shared, &control);
            }
            Ok(NetEvent::Stats { mut reply }) => {
                let report = replica
                    .broadcast_layer()
                    .recorder()
                    .map(|r| r.report())
                    .unwrap_or_default();
                let text = report.to_exposition(me.index() as u32);
                let body = encode_body::<B::Msg>(&Frame::StatsText(text.into_bytes()));
                let _ = write_frame(&mut reply, &body);
            }
            Ok(NetEvent::Input(input)) => {
                locked(&shared.metrics).inputs += 1;
                let fd = derive(omega.leader(), n);
                let actions = run_handler(&mut replica, me, n, fd, tick, |a, ctx| {
                    a.on_input(input, ctx)
                });
                dispatch_replica(me, actions, &mut links, &shared, &control);
            }
            Err(RecvTimeoutError::Timeout) => {
                tick += 1;
                locked(&shared.metrics).timer_fires += 1;
                let hb_actions = run_handler(&mut omega, me, n, (), tick, |a, ctx| a.on_timer(ctx));
                send_heartbeats::<B::Msg>(me, hb_actions, &mut links);
                let fd = derive(omega.leader(), n);
                let app_actions =
                    run_handler(&mut replica, me, n, fd, tick, |a, ctx| a.on_timer(ctx));
                dispatch_replica(me, app_actions, &mut links, &shared, &control);
            }
            Err(RecvTimeoutError::Disconnected) => return replica,
        }
    }
}

//! Blocking frame transport over TCP: writing and reading length-prefixed
//! frames, outbound peer links with reconnect, and the reader loop that
//! turns one inbound connection into decoded frames.
//!
//! Everything here is deliberately simple blocking I/O: each inbound
//! connection gets its own reader thread, each node owns one outbound
//! `TcpStream` per peer, and a frame is written with a single `write_all`
//! of the assembled prefix + body (frames are small enough that one copy
//! beats two syscalls).

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};

use crate::net::codec::{hello_body, DecodeError, MAX_FRAME_BODY};

/// Why reading the next frame off a connection stopped.
#[derive(Debug)]
pub(crate) enum ReadError {
    /// The connection failed or closed (normal at teardown).
    Io(io::Error),
    /// The peer sent bytes that violate the frame format — the caller
    /// counts these as malformed input and closes the connection.
    Malformed(DecodeError),
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::Io(err) => write!(f, "connection error: {err}"),
            ReadError::Malformed(err) => write!(f, "malformed frame: {err}"),
        }
    }
}

/// Writes one frame (length prefix + `body`) to `stream`; returns the total
/// bytes put on the wire.
pub(crate) fn write_frame(stream: &mut TcpStream, body: &[u8]) -> io::Result<u64> {
    if body.len() > MAX_FRAME_BODY {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "frame body exceeds MAX_FRAME_BODY",
        ));
    }
    let mut wire = Vec::with_capacity(4 + body.len());
    wire.extend_from_slice(&(body.len() as u32).to_be_bytes());
    wire.extend_from_slice(body);
    stream.write_all(&wire)?;
    Ok(wire.len() as u64)
}

/// Reads one frame body off `stream` (blocking until the length prefix and
/// the declared number of body bytes have arrived).
pub(crate) fn read_frame(stream: &mut TcpStream) -> Result<Vec<u8>, ReadError> {
    let mut prefix = [0u8; 4];
    stream.read_exact(&mut prefix).map_err(ReadError::Io)?;
    let declared = u32::from_be_bytes(prefix) as usize;
    if declared > MAX_FRAME_BODY {
        return Err(ReadError::Malformed(DecodeError::Oversized {
            declared: declared as u64,
        }));
    }
    let mut body = vec![0u8; declared];
    stream.read_exact(&mut body).map_err(ReadError::Io)?;
    Ok(body)
}

/// An outbound link to one peer: lazily connected, re-dialed once per send
/// after a failure, announcing `me` in a [`crate::net::codec::Frame::Hello`]
/// on every fresh connection. A peer that stays unreachable makes `send`
/// return `None` — the model's lossy-link semantics (messages to a crashed
/// process disappear).
#[derive(Debug)]
pub(crate) struct PeerLink {
    me: u32,
    addr: SocketAddr,
    stream: Option<TcpStream>,
}

impl PeerLink {
    /// A link to `addr`, identifying the local end as replica `me`.
    pub(crate) fn new(me: u32, addr: SocketAddr) -> Self {
        PeerLink {
            me,
            addr,
            stream: None,
        }
    }

    fn connect(&mut self) -> Option<&mut TcpStream> {
        if self.stream.is_none() {
            let mut fresh = TcpStream::connect(self.addr).ok()?;
            let _ = fresh.set_nodelay(true);
            write_frame(&mut fresh, &hello_body(self.me)).ok()?;
            self.stream = Some(fresh);
        }
        self.stream.as_mut()
    }

    /// Sends one frame body; returns the bytes put on the wire, or `None`
    /// if the peer is unreachable (after one reconnect attempt).
    pub(crate) fn send(&mut self, body: &[u8]) -> Option<u64> {
        for _ in 0..2 {
            match self.connect() {
                Some(stream) => match write_frame(stream, body) {
                    Ok(wire_len) => return Some(wire_len),
                    Err(_) => self.stream = None,
                },
                None => self.stream = None,
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn frames_survive_a_socket_roundtrip_and_bad_prefixes_are_rejected() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let writer = std::thread::spawn(move || {
            let mut out = TcpStream::connect(addr).expect("connect");
            let sent = write_frame(&mut out, b"hello frame").expect("write");
            assert_eq!(sent, 4 + 11);
            // an oversized length prefix, rejected before any body bytes
            out.write_all(&(u32::MAX).to_be_bytes()).expect("prefix");
        });
        let (mut inbound, _) = listener.accept().expect("accept");
        assert_eq!(read_frame(&mut inbound).expect("frame"), b"hello frame");
        assert!(matches!(
            read_frame(&mut inbound),
            Err(ReadError::Malformed(DecodeError::Oversized { .. }))
        ));
        writer.join().expect("writer");
        // writing an over-cap body is refused locally
        let mut out = TcpStream::connect(addr).expect("connect");
        let err = write_frame(&mut out, &vec![0u8; MAX_FRAME_BODY + 1]).expect_err("cap");
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn peer_links_deliver_reconnect_and_report_unreachable_peers() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let mut link = PeerLink::new(3, addr);
        assert!(link.send(b"one").is_some());
        let (mut inbound, _) = listener.accept().expect("accept");
        assert_eq!(read_frame(&mut inbound).expect("hello"), hello_body(3));
        assert_eq!(read_frame(&mut inbound).expect("body"), b"one");
        // sever the connection; a failed send makes the link re-dial and
        // re-greet (the first send after the cut may still land in the dead
        // socket's buffer, so poll until the fresh connection shows up)
        drop(inbound);
        listener.set_nonblocking(true).expect("nonblocking");
        let mut delivered = false;
        for _ in 0..500 {
            let _ = link.send(b"two");
            match listener.accept() {
                Ok((mut again, _)) => {
                    again.set_nonblocking(false).expect("blocking");
                    assert_eq!(read_frame(&mut again).expect("hello"), hello_body(3));
                    assert_eq!(read_frame(&mut again).expect("body"), b"two");
                    delivered = true;
                    break;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => ec_runtime::sleep_ms(2),
                Err(e) => panic!("accept failed: {e}"),
            }
        }
        assert!(delivered, "link never recovered after the disconnect");
        // a dead address is unreachable
        drop(listener);
        let mut dead = PeerLink::new(0, addr);
        assert!(format!("{dead:?}").contains("PeerLink"));
        assert!(dead.send(b"lost").is_none());
    }
}

//! The hand-rolled wire codec of the socket engine.
//!
//! Every frame on a [`crate::NetEngine`] connection is a **u32 big-endian
//! length prefix** followed by a **tagged body**: one tag byte selecting the
//! [`Frame`] variant, then the variant's fields in declaration order. All
//! integers are big-endian; byte strings and lists carry a u32 length/count
//! prefix. The format is dependency-free by design — the paper's wire enums
//! ([`ec_core::EtobMsg`], [`ec_core::TobMsg`], heartbeats) serialize through
//! the same [`WireCodec`] trait the frame layer uses, so what crosses the
//! TCP boundary is exactly the protocol state the simulator models.
//!
//! Decoding is *total*: malformed input of any shape yields a typed
//! [`DecodeError`], never a panic, never an unbounded allocation (list
//! counts are validated against the bytes actually present, and a frame
//! body is capped at [`MAX_FRAME_BODY`]). Non-canonical encodings — digest
//! runs out of order, duplicate graph nodes — are rejected rather than
//! repaired, so `decode(encode(x)) == x` and *only* encodings produced by
//! [`WireCodec::encode`] are accepted.
//!
//! The codec *core* — [`Reader`], [`DecodeError`], the [`WireCodec`] trait
//! and the push/read helpers — lives in [`ec_storage::codec`] so the
//! durable record log decodes through the same machinery, and the
//! protocol-type implementations live next to the types they encode
//! ([`ec_core::wire`], `ec_detectors::heartbeat`). This module re-exports
//! the core under the original paths and keeps only the engine-local frame
//! layer: [`Frame`], [`ReplicaCommand`] / [`ReplicaOutput`] bodies, and the
//! length-prefix assembly.

use ec_core::types::{MsgId, Payload};
use ec_core::wire::MSG_ID_BYTES;
use ec_detectors::HeartbeatMsg;
use ec_sim::ProcessId;

use ec_storage::codec::{push_bytes, push_u32, push_u64, read_usize};
pub use ec_storage::codec::{DecodeError, Reader, WireCodec};

use crate::replica::{ReplicaCommand, ReplicaOutput};

/// Upper bound on the body length of a single frame (16 MiB). A length
/// prefix above this is rejected before any allocation happens, so a
/// hostile or corrupted prefix cannot make a reader reserve gigabytes.
pub const MAX_FRAME_BODY: usize = 16 << 20;

/// The `from` value a driver (test harness / facade) announces in its
/// [`Frame::Hello`], distinguishing the control connection from peer
/// connections (which announce their replica index).
pub const DRIVER: u32 = u32::MAX;

/// The `from` value a metrics scraper announces in its [`Frame::Hello`]:
/// like [`DRIVER`] it is no replica, but unlike the driver it must *not*
/// capture the node's control stream — a scrape connection only ever
/// carries one [`Frame::StatsRequest`] and its [`Frame::StatsText`] reply.
pub const SCRAPER: u32 = u32::MAX - 1;

impl WireCodec for ReplicaCommand {
    fn encode(&self, out: &mut Vec<u8>) {
        push_bytes(out, self.command.as_ref());
        push_u32(out, self.deps.len() as u32);
        for dep in &self.deps {
            dep.encode(out);
        }
        match self.id {
            None => out.push(0),
            Some(id) => {
                out.push(1);
                id.encode(out);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let command: Payload = r.read_bytes()?.into();
        let count = r.read_count(MSG_ID_BYTES, "command dependency list")?;
        let mut deps = Vec::with_capacity(count);
        for _ in 0..count {
            deps.push(MsgId::decode(r)?);
        }
        let id = match r.read_u8()? {
            0 => None,
            1 => Some(MsgId::decode(r)?),
            tag => {
                return Err(DecodeError::BadTag {
                    context: "command id option",
                    tag,
                })
            }
        };
        Ok(ReplicaCommand { command, deps, id })
    }
}

impl WireCodec for ReplicaOutput {
    fn encode(&self, out: &mut Vec<u8>) {
        push_u64(out, self.applied as u64);
        push_bytes(out, &self.snapshot);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(ReplicaOutput {
            applied: read_usize(r, "applied count")?,
            snapshot: r.read_bytes()?.to_vec(),
        })
    }
}

/// One frame body of the socket engine, generic over the broadcast-layer
/// message type `M` ([`ec_core::EtobMsg`] or [`ec_core::TobMsg`]). Peer
/// connections carry
/// `App` and `Heartbeat`; the driver's control connection carries `Input`,
/// `Crash` and `Shutdown` inbound and `Output` plus a final `Shutdown`
/// goodbye outbound. Every connection opens with a `Hello`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Frame<M> {
    /// Connection preamble: who is dialing (a replica index, or [`DRIVER`]).
    Hello {
        /// The dialer's replica index, or [`DRIVER`] for the control link.
        from: u32,
    },
    /// A broadcast-layer protocol message between replicas.
    App {
        /// The sending replica.
        from: ProcessId,
        /// The protocol message.
        msg: M,
    },
    /// A failure-detector heartbeat between replicas (same connections as
    /// `App` traffic — the Ω plumbing rides the one mesh).
    Heartbeat {
        /// The sending replica.
        from: ProcessId,
        /// The heartbeat message.
        msg: HeartbeatMsg,
    },
    /// Driver → replica: a client command.
    Input(ReplicaCommand),
    /// Replica → driver: an externally visible state change.
    Output(ReplicaOutput),
    /// Driver → replica: stop taking steps, keeping state for harvest.
    Crash,
    /// Driver → replica: stop and say goodbye (a replica echoes `Shutdown`
    /// back once its final outputs are flushed, so the driver can drain
    /// deterministically); replica → driver: that goodbye.
    Shutdown,
    /// Scraper → replica: ask for the node's current telemetry in text
    /// exposition form. Answered with [`Frame::StatsText`] on the same
    /// connection.
    StatsRequest,
    /// Replica → scraper: the UTF-8 text metrics exposition of the node's
    /// live telemetry recorder.
    StatsText(
        /// The exposition bytes (UTF-8 text, one metric per line).
        Vec<u8>,
    ),
}

impl<M: WireCodec> WireCodec for Frame<M> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Frame::Hello { from } => {
                out.push(0);
                push_u32(out, *from);
            }
            Frame::App { from, msg } => {
                out.push(1);
                push_u32(out, from.index() as u32);
                msg.encode(out);
            }
            Frame::Heartbeat { from, msg } => {
                out.push(2);
                push_u32(out, from.index() as u32);
                msg.encode(out);
            }
            Frame::Input(command) => {
                out.push(3);
                command.encode(out);
            }
            Frame::Output(output) => {
                out.push(4);
                output.encode(out);
            }
            Frame::Crash => out.push(5),
            Frame::Shutdown => out.push(6),
            Frame::StatsRequest => out.push(7),
            Frame::StatsText(text) => {
                out.push(8);
                push_bytes(out, text);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.read_u8()? {
            0 => Ok(Frame::Hello {
                from: r.read_u32()?,
            }),
            1 => Ok(Frame::App {
                from: ProcessId::new(r.read_u32()? as usize),
                msg: M::decode(r)?,
            }),
            2 => Ok(Frame::Heartbeat {
                from: ProcessId::new(r.read_u32()? as usize),
                msg: HeartbeatMsg::decode(r)?,
            }),
            3 => Ok(Frame::Input(ReplicaCommand::decode(r)?)),
            4 => Ok(Frame::Output(ReplicaOutput::decode(r)?)),
            5 => Ok(Frame::Crash),
            6 => Ok(Frame::Shutdown),
            7 => Ok(Frame::StatsRequest),
            8 => Ok(Frame::StatsText(r.read_bytes()?.to_vec())),
            tag => Err(DecodeError::BadTag {
                context: "Frame",
                tag,
            }),
        }
    }
}

/// Encodes a frame body (without the length prefix).
pub fn encode_body<M: WireCodec>(frame: &Frame<M>) -> Vec<u8> {
    let mut out = Vec::new();
    frame.encode(&mut out);
    out
}

/// Decodes a complete frame body (as read off the wire after the length
/// prefix), requiring every byte to be consumed.
pub fn decode_body<M: WireCodec>(body: &[u8]) -> Result<Frame<M>, DecodeError> {
    let mut reader = Reader::new(body);
    let frame = Frame::<M>::decode(&mut reader)?;
    reader.ensure_consumed()?;
    Ok(frame)
}

/// Assembles the on-wire bytes of a frame: u32 big-endian length prefix
/// followed by the body.
pub fn frame_bytes<M: WireCodec>(frame: &Frame<M>) -> Vec<u8> {
    let body = encode_body(frame);
    let mut wire = Vec::with_capacity(4 + body.len());
    push_u32(&mut wire, body.len() as u32);
    wire.extend_from_slice(&body);
    wire
}

/// Encodes a [`Frame::Hello`] body directly: the preamble's layout does not
/// depend on the message type `M`, so connection setup code can emit it
/// without committing to one.
pub fn hello_body(from: u32) -> Vec<u8> {
    let mut out = vec![0u8];
    push_u32(&mut out, from);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ec_core::etob_omega::{CausalGraph, EtobMsg};
    use ec_core::types::AppMessage;
    use ec_core::version::VersionVector;
    use std::fmt;

    fn id(p: usize, seq: u64) -> MsgId {
        MsgId::new(ProcessId::new(p), seq)
    }

    fn roundtrip<T: WireCodec + PartialEq + fmt::Debug>(value: &T) {
        let mut bytes = Vec::new();
        value.encode(&mut bytes);
        let mut reader = Reader::new(&bytes);
        let back = T::decode(&mut reader).expect("decodes");
        reader.ensure_consumed().expect("fully consumed");
        assert_eq!(&back, value);
    }

    #[test]
    fn primitives_and_messages_roundtrip() {
        roundtrip(&id(3, 17));
        roundtrip(&AppMessage::with_deps(
            id(1, 2),
            b"payload".to_vec(),
            vec![id(0, 1), id(2, 9)],
        ));
        roundtrip(&AppMessage::new(id(0, 0), Vec::new()));
        let mut vector = VersionVector::new();
        vector.insert(id(0, 1));
        vector.insert(id(0, 2));
        vector.insert(id(2, 7));
        roundtrip(&vector);
        roundtrip(&VersionVector::new());
        let mut graph = CausalGraph::new();
        graph.update(AppMessage::new(id(0, 1), b"a".to_vec()));
        graph.update(AppMessage::with_deps(
            id(1, 1),
            b"b".to_vec(),
            vec![id(0, 1)],
        ));
        roundtrip(&graph);
        roundtrip(&HeartbeatMsg::Heartbeat);
    }

    #[test]
    fn frames_roundtrip_through_the_wire_form() {
        let frame: Frame<EtobMsg> = Frame::App {
            from: ProcessId::new(1),
            msg: EtobMsg::PromoteDelta {
                base: 3,
                prefix_hash: 0xDEAD_BEEF,
                suffix: vec![AppMessage::new(id(1, 4), b"x".to_vec())],
            },
        };
        let wire = frame_bytes(&frame);
        let declared = u32::from_be_bytes([wire[0], wire[1], wire[2], wire[3]]) as usize;
        assert_eq!(declared, wire.len() - 4);
        assert_eq!(decode_body::<EtobMsg>(&wire[4..]), Ok(frame));
    }

    #[test]
    fn malformed_bodies_yield_typed_errors() {
        // unknown frame tag
        assert_eq!(
            decode_body::<EtobMsg>(&[99]),
            Err(DecodeError::BadTag {
                context: "Frame",
                tag: 99
            })
        );
        // truncated Hello
        assert!(matches!(
            decode_body::<EtobMsg>(&[0, 1, 2]),
            Err(DecodeError::Truncated { .. })
        ));
        // trailing garbage after a complete Crash frame
        assert_eq!(
            decode_body::<EtobMsg>(&[5, 0]),
            Err(DecodeError::TrailingBytes { remaining: 1 })
        );
        // a list count no remaining input could satisfy
        let mut body = vec![3u8]; // Input
        body.extend_from_slice(&0u32.to_be_bytes()); // empty command
        body.extend_from_slice(&u32::MAX.to_be_bytes()); // absurd dep count
        assert!(matches!(
            decode_body::<EtobMsg>(&body),
            Err(DecodeError::BadLength { .. })
        ));
        // errors render
        for err in [
            DecodeError::Truncated {
                needed: 4,
                available: 1,
            },
            DecodeError::TrailingBytes { remaining: 2 },
            DecodeError::BadTag {
                context: "Frame",
                tag: 7,
            },
            DecodeError::BadLength {
                context: "list",
                value: 9,
            },
            DecodeError::Oversized { declared: 1 << 40 },
            DecodeError::Invalid { context: "runs" },
        ] {
            assert!(!format!("{err}").is_empty());
            assert!(!format!("{err:?}").is_empty());
        }
    }

    #[test]
    fn non_canonical_digests_and_graphs_are_rejected() {
        // digest with descending origins
        let mut body = Vec::new();
        push_u32(&mut body, 2); // two origins
        for origin in [5u32, 1] {
            push_u32(&mut body, origin);
            push_u32(&mut body, 1); // one run
            push_u64(&mut body, 1);
            push_u64(&mut body, 2);
        }
        let mut reader = Reader::new(&body);
        assert_eq!(
            VersionVector::decode(&mut reader),
            Err(DecodeError::Invalid {
                context: "digest origins must be strictly ascending",
            })
        );
        // duplicate graph node
        let mut body = Vec::new();
        push_u32(&mut body, 2);
        for _ in 0..2 {
            AppMessage::new(id(0, 1), b"dup".to_vec()).encode(&mut body);
        }
        let mut reader = Reader::new(&body);
        assert_eq!(
            CausalGraph::decode(&mut reader),
            Err(DecodeError::Invalid {
                context: "duplicate graph node",
            })
        );
    }
}

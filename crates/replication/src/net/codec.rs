//! The hand-rolled wire codec of the socket engine.
//!
//! Every frame on a [`crate::NetEngine`] connection is a **u32 big-endian
//! length prefix** followed by a **tagged body**: one tag byte selecting the
//! [`Frame`] variant, then the variant's fields in declaration order. All
//! integers are big-endian; byte strings and lists carry a u32 length/count
//! prefix. The format is dependency-free by design — the paper's wire enums
//! ([`EtobMsg`], [`TobMsg`], heartbeats) serialize through the same
//! [`WireCodec`] trait the frame layer uses, so what crosses the TCP
//! boundary is exactly the protocol state the simulator models.
//!
//! Decoding is *total*: malformed input of any shape yields a typed
//! [`DecodeError`], never a panic, never an unbounded allocation (list
//! counts are validated against the bytes actually present, and a frame
//! body is capped at [`MAX_FRAME_BODY`]). Non-canonical encodings — digest
//! runs out of order, duplicate graph nodes — are rejected rather than
//! repaired, so `decode(encode(x)) == x` and *only* encodings produced by
//! [`WireCodec::encode`] are accepted.

use std::fmt;

use ec_core::etob_omega::{CausalGraph, EtobMsg};
use ec_core::tob_consensus::TobMsg;
use ec_core::types::{AppMessage, MsgId, Payload};
use ec_core::version::{SeqRanges, VersionVector};
use ec_detectors::HeartbeatMsg;
use ec_sim::ProcessId;

use crate::replica::{ReplicaCommand, ReplicaOutput};

/// Upper bound on the body length of a single frame (16 MiB). A length
/// prefix above this is rejected before any allocation happens, so a
/// hostile or corrupted prefix cannot make a reader reserve gigabytes.
pub const MAX_FRAME_BODY: usize = 16 << 20;

/// The `from` value a driver (test harness / facade) announces in its
/// [`Frame::Hello`], distinguishing the control connection from peer
/// connections (which announce their replica index).
pub const DRIVER: u32 = u32::MAX;

/// Why a byte sequence failed to decode. Every malformed input maps to one
/// of these — the decoding path has no panicking branch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The input ended before a field was complete.
    Truncated {
        /// Bytes the current field still needed.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// The input continued past the end of a complete value.
    TrailingBytes {
        /// Unconsumed byte count.
        remaining: usize,
    },
    /// An enum tag byte matched no variant.
    BadTag {
        /// Which enum was being decoded.
        context: &'static str,
        /// The offending tag byte.
        tag: u8,
    },
    /// A length or count field was impossible: a list count larger than the
    /// remaining bytes could hold, or a value overflowing `usize`.
    BadLength {
        /// Which field was being decoded.
        context: &'static str,
        /// The offending value.
        value: u64,
    },
    /// A frame body length prefix exceeded [`MAX_FRAME_BODY`].
    Oversized {
        /// The declared body length.
        declared: u64,
    },
    /// A structurally well-formed but non-canonical encoding: digest runs
    /// out of order or non-maximal, duplicate graph nodes, duplicate digest
    /// origins.
    Invalid {
        /// Which invariant was violated.
        context: &'static str,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated { needed, available } => {
                write!(f, "truncated input: needed {needed} bytes, had {available}")
            }
            DecodeError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after a complete value")
            }
            DecodeError::BadTag { context, tag } => {
                write!(f, "unknown tag {tag} for {context}")
            }
            DecodeError::BadLength { context, value } => {
                write!(f, "impossible length {value} for {context}")
            }
            DecodeError::Oversized { declared } => {
                write!(
                    f,
                    "frame body of {declared} bytes exceeds the {MAX_FRAME_BODY}-byte cap"
                )
            }
            DecodeError::Invalid { context } => {
                write!(f, "non-canonical encoding: {context}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// A bounds-checked cursor over an input buffer. All reads narrow the
/// remaining slice; none of them can panic.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    /// Starts reading at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    /// Consumes exactly `n` bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if n > self.buf.len() {
            return Err(DecodeError::Truncated {
                needed: n,
                available: self.buf.len(),
            });
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    fn be_uint(&mut self, width: usize) -> Result<u64, DecodeError> {
        let bytes = self.take(width)?;
        Ok(bytes.iter().fold(0u64, |acc, b| (acc << 8) | u64::from(*b)))
    }

    /// Consumes one byte.
    pub fn read_u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.be_uint(1)? as u8)
    }

    /// Consumes a big-endian u32.
    pub fn read_u32(&mut self) -> Result<u32, DecodeError> {
        Ok(self.be_uint(4)? as u32)
    }

    /// Consumes a big-endian u64.
    pub fn read_u64(&mut self) -> Result<u64, DecodeError> {
        self.be_uint(8)
    }

    /// Consumes a u32 length prefix followed by that many raw bytes.
    pub fn read_bytes(&mut self) -> Result<&'a [u8], DecodeError> {
        let len = self.read_u32()? as usize;
        self.take(len)
    }

    /// Consumes a u32 element count and validates it against the bytes
    /// still present: each element needs at least `min_elem` bytes, so a
    /// count the remaining input cannot possibly hold is rejected before
    /// any allocation.
    pub fn read_count(
        &mut self,
        min_elem: usize,
        context: &'static str,
    ) -> Result<usize, DecodeError> {
        let count = self.read_u32()? as usize;
        if count > self.remaining() / min_elem.max(1) {
            return Err(DecodeError::BadLength {
                context,
                value: count as u64,
            });
        }
        Ok(count)
    }

    /// Asserts that the input was consumed completely.
    pub fn ensure_consumed(self) -> Result<(), DecodeError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(DecodeError::TrailingBytes {
                remaining: self.buf.len(),
            })
        }
    }
}

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn push_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    push_u32(out, bytes.len() as u32);
    out.extend_from_slice(bytes);
}

fn read_usize(r: &mut Reader<'_>, context: &'static str) -> Result<usize, DecodeError> {
    let v = r.read_u64()?;
    usize::try_from(v).map_err(|_| DecodeError::BadLength { context, value: v })
}

/// A value with a self-contained binary encoding on the socket engine's
/// wire. Implementations come in matched pairs: `decode` accepts exactly
/// the encodings `encode` produces (canonical round-trip), and rejects
/// everything else with a typed [`DecodeError`].
pub trait WireCodec: Sized {
    /// Appends the canonical encoding of `self` to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Decodes one value, consuming exactly its encoding from the reader.
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError>;
}

impl WireCodec for MsgId {
    fn encode(&self, out: &mut Vec<u8>) {
        push_u32(out, self.origin.index() as u32);
        push_u64(out, self.seq);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let origin = ProcessId::new(r.read_u32()? as usize);
        let seq = r.read_u64()?;
        Ok(MsgId::new(origin, seq))
    }
}

/// Encoded [`MsgId`] size — the `min_elem` bound for dependency lists.
const MSG_ID_BYTES: usize = 12;
/// Minimal encoded [`AppMessage`] size (id + empty payload + empty deps).
const APP_MESSAGE_BYTES: usize = MSG_ID_BYTES + 4 + 4;

impl WireCodec for AppMessage {
    fn encode(&self, out: &mut Vec<u8>) {
        self.id.encode(out);
        push_bytes(out, self.payload.as_ref());
        push_u32(out, self.deps.len() as u32);
        for dep in &self.deps {
            dep.encode(out);
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let id = MsgId::decode(r)?;
        let payload: Payload = r.read_bytes()?.into();
        let count = r.read_count(MSG_ID_BYTES, "dependency list")?;
        let mut deps = Vec::with_capacity(count);
        for _ in 0..count {
            deps.push(MsgId::decode(r)?);
        }
        Ok(AppMessage { id, payload, deps })
    }
}

fn encode_messages(out: &mut Vec<u8>, messages: &[AppMessage]) {
    push_u32(out, messages.len() as u32);
    for m in messages {
        m.encode(out);
    }
}

fn decode_messages(r: &mut Reader<'_>) -> Result<Vec<AppMessage>, DecodeError> {
    let count = r.read_count(APP_MESSAGE_BYTES, "message list")?;
    let mut messages = Vec::with_capacity(count);
    for _ in 0..count {
        messages.push(AppMessage::decode(r)?);
    }
    Ok(messages)
}

impl WireCodec for SeqRanges {
    fn encode(&self, out: &mut Vec<u8>) {
        push_u32(out, self.runs().len() as u32);
        for &(lo, hi) in self.runs() {
            push_u64(out, lo);
            push_u64(out, hi);
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let count = r.read_count(16, "digest run list")?;
        let mut runs = Vec::with_capacity(count);
        for _ in 0..count {
            let lo = r.read_u64()?;
            let hi = r.read_u64()?;
            runs.push((lo, hi));
        }
        SeqRanges::from_runs(runs).ok_or(DecodeError::Invalid {
            context: "digest runs must be ascending and maximal",
        })
    }
}

impl WireCodec for VersionVector {
    fn encode(&self, out: &mut Vec<u8>) {
        push_u32(out, self.entries().count() as u32);
        for (origin, ranges) in self.entries() {
            push_u32(out, origin.index() as u32);
            ranges.encode(out);
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        // origin id (4) + run count (4) + at least one run (16)
        let count = r.read_count(24, "digest origin list")?;
        let mut vector = VersionVector::new();
        let mut prev: Option<usize> = None;
        for _ in 0..count {
            let origin = r.read_u32()? as usize;
            if prev.is_some_and(|p| p >= origin) {
                return Err(DecodeError::Invalid {
                    context: "digest origins must be strictly ascending",
                });
            }
            prev = Some(origin);
            let ranges = SeqRanges::decode(r)?;
            if ranges.is_empty() {
                return Err(DecodeError::Invalid {
                    context: "digest entries must be non-empty",
                });
            }
            vector.insert_ranges(ProcessId::new(origin), &ranges);
        }
        Ok(vector)
    }
}

impl WireCodec for CausalGraph {
    // Only the node list crosses the wire: the causal edges are exactly
    // `{(dep, id)}` over the nodes' declared dependencies and the digest is
    // a pure function of the node identifiers, so the receiver rebuilds
    // both — cheaper than shipping them, and impossible to desynchronize.
    fn encode(&self, out: &mut Vec<u8>) {
        push_u32(out, self.len() as u32);
        for m in self.messages() {
            m.encode(out);
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let count = r.read_count(APP_MESSAGE_BYTES, "graph node list")?;
        let mut graph = CausalGraph::new();
        for _ in 0..count {
            let message = AppMessage::decode(r)?;
            if !graph.update(message) {
                return Err(DecodeError::Invalid {
                    context: "duplicate graph node",
                });
            }
        }
        Ok(graph)
    }
}

impl WireCodec for EtobMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            EtobMsg::Update(graph) => {
                out.push(0);
                graph.encode(out);
            }
            EtobMsg::Delta { nodes, frontier } => {
                out.push(1);
                encode_messages(out, nodes);
                frontier.encode(out);
            }
            EtobMsg::SyncRequest { digest } => {
                out.push(2);
                digest.encode(out);
            }
            EtobMsg::Promote(sequence) => {
                out.push(3);
                encode_messages(out, sequence);
            }
            EtobMsg::PromoteDelta {
                base,
                prefix_hash,
                suffix,
            } => {
                out.push(4);
                push_u64(out, *base as u64);
                push_u64(out, *prefix_hash);
                encode_messages(out, suffix);
            }
            EtobMsg::PromoteRequest => out.push(5),
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.read_u8()? {
            0 => Ok(EtobMsg::Update(CausalGraph::decode(r)?)),
            1 => Ok(EtobMsg::Delta {
                nodes: decode_messages(r)?,
                frontier: VersionVector::decode(r)?,
            }),
            2 => Ok(EtobMsg::SyncRequest {
                digest: VersionVector::decode(r)?,
            }),
            3 => Ok(EtobMsg::Promote(decode_messages(r)?)),
            4 => Ok(EtobMsg::PromoteDelta {
                base: read_usize(r, "promote base")?,
                prefix_hash: r.read_u64()?,
                suffix: decode_messages(r)?,
            }),
            5 => Ok(EtobMsg::PromoteRequest),
            tag => Err(DecodeError::BadTag {
                context: "EtobMsg",
                tag,
            }),
        }
    }
}

impl WireCodec for TobMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            TobMsg::Forward(message) => {
                out.push(0);
                message.encode(out);
            }
            TobMsg::Accept { slot, message } => {
                out.push(1);
                push_u64(out, *slot);
                message.encode(out);
            }
            TobMsg::Ack { slot, id } => {
                out.push(2);
                push_u64(out, *slot);
                id.encode(out);
            }
            TobMsg::Heads {
                next_slot,
                delivered,
            } => {
                out.push(3);
                push_u64(out, *next_slot);
                push_u64(out, *delivered);
            }
            TobMsg::SyncRequest { have } => {
                out.push(4);
                push_u64(out, *have);
            }
            TobMsg::SyncReply {
                have,
                next_deliver_slot,
                suffix,
            } => {
                out.push(5);
                push_u64(out, *have);
                push_u64(out, *next_deliver_slot);
                encode_messages(out, suffix);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.read_u8()? {
            0 => Ok(TobMsg::Forward(AppMessage::decode(r)?)),
            1 => Ok(TobMsg::Accept {
                slot: r.read_u64()?,
                message: AppMessage::decode(r)?,
            }),
            2 => Ok(TobMsg::Ack {
                slot: r.read_u64()?,
                id: MsgId::decode(r)?,
            }),
            3 => Ok(TobMsg::Heads {
                next_slot: r.read_u64()?,
                delivered: r.read_u64()?,
            }),
            4 => Ok(TobMsg::SyncRequest {
                have: r.read_u64()?,
            }),
            5 => Ok(TobMsg::SyncReply {
                have: r.read_u64()?,
                next_deliver_slot: r.read_u64()?,
                suffix: decode_messages(r)?,
            }),
            tag => Err(DecodeError::BadTag {
                context: "TobMsg",
                tag,
            }),
        }
    }
}

impl WireCodec for HeartbeatMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            HeartbeatMsg::Heartbeat => out.push(0),
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.read_u8()? {
            0 => Ok(HeartbeatMsg::Heartbeat),
            tag => Err(DecodeError::BadTag {
                context: "HeartbeatMsg",
                tag,
            }),
        }
    }
}

impl WireCodec for ReplicaCommand {
    fn encode(&self, out: &mut Vec<u8>) {
        push_bytes(out, self.command.as_ref());
        push_u32(out, self.deps.len() as u32);
        for dep in &self.deps {
            dep.encode(out);
        }
        match self.id {
            None => out.push(0),
            Some(id) => {
                out.push(1);
                id.encode(out);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let command: Payload = r.read_bytes()?.into();
        let count = r.read_count(MSG_ID_BYTES, "command dependency list")?;
        let mut deps = Vec::with_capacity(count);
        for _ in 0..count {
            deps.push(MsgId::decode(r)?);
        }
        let id = match r.read_u8()? {
            0 => None,
            1 => Some(MsgId::decode(r)?),
            tag => {
                return Err(DecodeError::BadTag {
                    context: "command id option",
                    tag,
                })
            }
        };
        Ok(ReplicaCommand { command, deps, id })
    }
}

impl WireCodec for ReplicaOutput {
    fn encode(&self, out: &mut Vec<u8>) {
        push_u64(out, self.applied as u64);
        push_bytes(out, &self.snapshot);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(ReplicaOutput {
            applied: read_usize(r, "applied count")?,
            snapshot: r.read_bytes()?.to_vec(),
        })
    }
}

/// One frame body of the socket engine, generic over the broadcast-layer
/// message type `M` ([`EtobMsg`] or [`TobMsg`]). Peer connections carry
/// `App` and `Heartbeat`; the driver's control connection carries `Input`,
/// `Crash` and `Shutdown` inbound and `Output` plus a final `Shutdown`
/// goodbye outbound. Every connection opens with a `Hello`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Frame<M> {
    /// Connection preamble: who is dialing (a replica index, or [`DRIVER`]).
    Hello {
        /// The dialer's replica index, or [`DRIVER`] for the control link.
        from: u32,
    },
    /// A broadcast-layer protocol message between replicas.
    App {
        /// The sending replica.
        from: ProcessId,
        /// The protocol message.
        msg: M,
    },
    /// A failure-detector heartbeat between replicas (same connections as
    /// `App` traffic — the Ω plumbing rides the one mesh).
    Heartbeat {
        /// The sending replica.
        from: ProcessId,
        /// The heartbeat message.
        msg: HeartbeatMsg,
    },
    /// Driver → replica: a client command.
    Input(ReplicaCommand),
    /// Replica → driver: an externally visible state change.
    Output(ReplicaOutput),
    /// Driver → replica: stop taking steps, keeping state for harvest.
    Crash,
    /// Driver → replica: stop and say goodbye (a replica echoes `Shutdown`
    /// back once its final outputs are flushed, so the driver can drain
    /// deterministically); replica → driver: that goodbye.
    Shutdown,
}

impl<M: WireCodec> WireCodec for Frame<M> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Frame::Hello { from } => {
                out.push(0);
                push_u32(out, *from);
            }
            Frame::App { from, msg } => {
                out.push(1);
                push_u32(out, from.index() as u32);
                msg.encode(out);
            }
            Frame::Heartbeat { from, msg } => {
                out.push(2);
                push_u32(out, from.index() as u32);
                msg.encode(out);
            }
            Frame::Input(command) => {
                out.push(3);
                command.encode(out);
            }
            Frame::Output(output) => {
                out.push(4);
                output.encode(out);
            }
            Frame::Crash => out.push(5),
            Frame::Shutdown => out.push(6),
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match r.read_u8()? {
            0 => Ok(Frame::Hello {
                from: r.read_u32()?,
            }),
            1 => Ok(Frame::App {
                from: ProcessId::new(r.read_u32()? as usize),
                msg: M::decode(r)?,
            }),
            2 => Ok(Frame::Heartbeat {
                from: ProcessId::new(r.read_u32()? as usize),
                msg: HeartbeatMsg::decode(r)?,
            }),
            3 => Ok(Frame::Input(ReplicaCommand::decode(r)?)),
            4 => Ok(Frame::Output(ReplicaOutput::decode(r)?)),
            5 => Ok(Frame::Crash),
            6 => Ok(Frame::Shutdown),
            tag => Err(DecodeError::BadTag {
                context: "Frame",
                tag,
            }),
        }
    }
}

/// Encodes a frame body (without the length prefix).
pub fn encode_body<M: WireCodec>(frame: &Frame<M>) -> Vec<u8> {
    let mut out = Vec::new();
    frame.encode(&mut out);
    out
}

/// Decodes a complete frame body (as read off the wire after the length
/// prefix), requiring every byte to be consumed.
pub fn decode_body<M: WireCodec>(body: &[u8]) -> Result<Frame<M>, DecodeError> {
    let mut reader = Reader::new(body);
    let frame = Frame::<M>::decode(&mut reader)?;
    reader.ensure_consumed()?;
    Ok(frame)
}

/// Assembles the on-wire bytes of a frame: u32 big-endian length prefix
/// followed by the body.
pub fn frame_bytes<M: WireCodec>(frame: &Frame<M>) -> Vec<u8> {
    let body = encode_body(frame);
    let mut wire = Vec::with_capacity(4 + body.len());
    push_u32(&mut wire, body.len() as u32);
    wire.extend_from_slice(&body);
    wire
}

/// Encodes a [`Frame::Hello`] body directly: the preamble's layout does not
/// depend on the message type `M`, so connection setup code can emit it
/// without committing to one.
pub fn hello_body(from: u32) -> Vec<u8> {
    let mut out = vec![0u8];
    push_u32(&mut out, from);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(p: usize, seq: u64) -> MsgId {
        MsgId::new(ProcessId::new(p), seq)
    }

    fn roundtrip<T: WireCodec + PartialEq + fmt::Debug>(value: &T) {
        let mut bytes = Vec::new();
        value.encode(&mut bytes);
        let mut reader = Reader::new(&bytes);
        let back = T::decode(&mut reader).expect("decodes");
        reader.ensure_consumed().expect("fully consumed");
        assert_eq!(&back, value);
    }

    #[test]
    fn primitives_and_messages_roundtrip() {
        roundtrip(&id(3, 17));
        roundtrip(&AppMessage::with_deps(
            id(1, 2),
            b"payload".to_vec(),
            vec![id(0, 1), id(2, 9)],
        ));
        roundtrip(&AppMessage::new(id(0, 0), Vec::new()));
        let mut vector = VersionVector::new();
        vector.insert(id(0, 1));
        vector.insert(id(0, 2));
        vector.insert(id(2, 7));
        roundtrip(&vector);
        roundtrip(&VersionVector::new());
        let mut graph = CausalGraph::new();
        graph.update(AppMessage::new(id(0, 1), b"a".to_vec()));
        graph.update(AppMessage::with_deps(
            id(1, 1),
            b"b".to_vec(),
            vec![id(0, 1)],
        ));
        roundtrip(&graph);
        roundtrip(&HeartbeatMsg::Heartbeat);
    }

    #[test]
    fn frames_roundtrip_through_the_wire_form() {
        let frame: Frame<EtobMsg> = Frame::App {
            from: ProcessId::new(1),
            msg: EtobMsg::PromoteDelta {
                base: 3,
                prefix_hash: 0xDEAD_BEEF,
                suffix: vec![AppMessage::new(id(1, 4), b"x".to_vec())],
            },
        };
        let wire = frame_bytes(&frame);
        let declared = u32::from_be_bytes([wire[0], wire[1], wire[2], wire[3]]) as usize;
        assert_eq!(declared, wire.len() - 4);
        assert_eq!(decode_body::<EtobMsg>(&wire[4..]), Ok(frame));
    }

    #[test]
    fn malformed_bodies_yield_typed_errors() {
        // unknown frame tag
        assert_eq!(
            decode_body::<EtobMsg>(&[99]),
            Err(DecodeError::BadTag {
                context: "Frame",
                tag: 99
            })
        );
        // truncated Hello
        assert!(matches!(
            decode_body::<EtobMsg>(&[0, 1, 2]),
            Err(DecodeError::Truncated { .. })
        ));
        // trailing garbage after a complete Crash frame
        assert_eq!(
            decode_body::<EtobMsg>(&[5, 0]),
            Err(DecodeError::TrailingBytes { remaining: 1 })
        );
        // a list count no remaining input could satisfy
        let mut body = vec![3u8]; // Input
        body.extend_from_slice(&0u32.to_be_bytes()); // empty command
        body.extend_from_slice(&u32::MAX.to_be_bytes()); // absurd dep count
        assert!(matches!(
            decode_body::<EtobMsg>(&body),
            Err(DecodeError::BadLength { .. })
        ));
        // errors render
        for err in [
            DecodeError::Truncated {
                needed: 4,
                available: 1,
            },
            DecodeError::TrailingBytes { remaining: 2 },
            DecodeError::BadTag {
                context: "Frame",
                tag: 7,
            },
            DecodeError::BadLength {
                context: "list",
                value: 9,
            },
            DecodeError::Oversized { declared: 1 << 40 },
            DecodeError::Invalid { context: "runs" },
        ] {
            assert!(!format!("{err}").is_empty());
            assert!(!format!("{err:?}").is_empty());
        }
    }

    #[test]
    fn non_canonical_digests_and_graphs_are_rejected() {
        // digest with descending origins
        let mut body = Vec::new();
        push_u32(&mut body, 2); // two origins
        for origin in [5u32, 1] {
            push_u32(&mut body, origin);
            push_u32(&mut body, 1); // one run
            push_u64(&mut body, 1);
            push_u64(&mut body, 2);
        }
        let mut reader = Reader::new(&body);
        assert_eq!(
            VersionVector::decode(&mut reader),
            Err(DecodeError::Invalid {
                context: "digest origins must be strictly ascending",
            })
        );
        // duplicate graph node
        let mut body = Vec::new();
        push_u32(&mut body, 2);
        for _ in 0..2 {
            AppMessage::new(id(0, 1), b"dup".to_vec()).encode(&mut body);
        }
        let mut reader = Reader::new(&body);
        assert_eq!(
            CausalGraph::decode(&mut reader),
            Err(DecodeError::Invalid {
                context: "duplicate graph node",
            })
        );
    }
}

//! Client sessions: causal-dependency threading for the service facade.
//!
//! The paper's ETOB interface takes `broadcastETOB(m, C(m))` — every
//! broadcast declares the set of messages it causally depends on, and
//! Algorithm 5 guarantees those are always delivered first (property P3).
//! Before the facade existed, application code had to build `C(m)` by hand
//! with [`crate::replica::ReplicaCommand::with_deps`], which meant tracking
//! message identifiers manually.
//!
//! A [`Session`] automates this: it is a lightweight client handle bound to
//! one entry replica that remembers the identifier of the last command it
//! submitted. Every subsequent submission through
//! [`crate::cluster::Cluster::submit`] automatically declares that identifier
//! as a causal dependency, so the commands of one session form a causal
//! chain and are applied in submission order on every replica, on every
//! engine, at every consistency level — the session-level guarantee
//! Dynamo/Bayou-style systems call "read your writes / monotonic writes".
//! Distinct sessions stay causally unrelated and may interleave.

use ec_core::types::MsgId;
use ec_sim::ProcessId;

/// A client handle bound to one entry replica, threading each submitted
/// command's identifier into the next command's causal dependencies.
///
/// Sessions are handed out by `Cluster::session` (round-robin over entry
/// replicas) or pinned to a replica with `Cluster::session_at`; submissions
/// go through `Cluster::submit`, which assigns the message identifier and
/// advances the session's causal frontier.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Session {
    entry: ProcessId,
    last: Option<MsgId>,
}

impl Session {
    /// A fresh session entering through replica `entry`, with an empty
    /// causal history.
    pub fn at(entry: ProcessId) -> Self {
        Session { entry, last: None }
    }

    /// The replica this session submits through.
    pub fn entry(&self) -> ProcessId {
        self.entry
    }

    /// The identifier of the last command submitted through this session —
    /// the causal frontier the next submission will declare as `C(m)`.
    pub fn frontier(&self) -> Option<MsgId> {
        self.last
    }

    /// A new session that starts from this session's causal frontier but
    /// enters through `entry`. Commands submitted through the fork are
    /// ordered after everything this session submitted so far, and the two
    /// branches are concurrent with each other afterwards.
    pub fn fork_at(&self, entry: ProcessId) -> Session {
        Session {
            entry,
            last: self.last,
        }
    }

    /// Advances the causal frontier to `id` (called by the cluster after it
    /// has assigned the identifier of a submitted command).
    pub(crate) fn advance(&mut self, id: MsgId) {
        self.last = Some(id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sessions_track_entry_and_frontier() {
        let mut s = Session::at(ProcessId::new(2));
        assert_eq!(s.entry(), ProcessId::new(2));
        assert_eq!(s.frontier(), None);
        let id = MsgId::new(ProcessId::new(2), 1);
        s.advance(id);
        assert_eq!(s.frontier(), Some(id));
        let fork = s.fork_at(ProcessId::new(0));
        assert_eq!(fork.entry(), ProcessId::new(0));
        assert_eq!(fork.frontier(), Some(id));
    }
}

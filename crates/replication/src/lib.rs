//! # `ec-replication` — replicated state machines over (eventual) total order
//! broadcast
//!
//! The paper's motivation is replicated services in the style of Dynamo,
//! PNUTS and Bigtable: a deterministic state machine replicated over server
//! processes. This crate provides that application layer, fronted by an
//! engine-agnostic deployment facade:
//!
//! * [`cluster`] — **the main entry point**: [`ClusterBuilder`] deploys any
//!   state machine at a chosen [`Consistency`] level on a chosen execution
//!   engine and returns a [`Cluster`] with uniform [`Session`] client
//!   handles and a uniform [`ClusterReport`]. What is replicated, how
//!   strongly, and where it runs are configuration, not code.
//! * [`engine`] — the [`Engine`] trait and its three implementations:
//!   [`SimEngine`] (deterministic simulation over `ec-sim`),
//!   [`ThreadEngine`] (one OS thread per replica over `ec-runtime`) and
//!   [`NetEngine`] (one socket node per replica over [`net`]). The
//!   cross-engine conformance suite drives the same workload through all of
//!   them and checks byte-identical convergence — the paper's
//!   "not a simulator artifact" claim as an executable test.
//! * [`net`] — the socket substrate behind [`NetEngine`]: a hand-rolled
//!   length-prefixed binary frame format ([`net::codec`]) and replica nodes
//!   exchanging it over loopback TCP, heartbeats included.
//! * [`session`] — client sessions that automatically thread causal
//!   dependencies (`C(m)`) through successive commands, replacing hand-built
//!   dependency lists.
//! * [`state_machine`] — deterministic state machines (a key–value store, a
//!   counter, a last-writer-wins register) driven by opaque commands.
//! * [`replica`] — the low-level path: a generic replica that feeds client
//!   commands into *any* [`ec_core::types::EventualTotalOrderBroadcast`]
//!   implementation and replays the delivered sequence into its state
//!   machine. The facade wires this for you; drive it by hand only when an
//!   experiment needs direct control over the world or the broadcast layer.
//! * [`durable`] — the per-replica durability layer behind
//!   [`ClusterBuilder::durable`]: an `ec-storage` record log mirroring the
//!   delivered tail plus periodic snapshots, and the recovery path that
//!   [`Cluster::restart`] (and the chaos crash–recover nemesis) uses to
//!   rejoin from disk, pulling only the missing suffix via anti-entropy.
//! * [`convergence`] — convergence metrics over replica output histories:
//!   when did all correct replicas last agree, how long did divergence
//!   episodes last, how many commands were applied on each side of a
//!   partition. These are the quantities the partition-tolerance experiment
//!   (E2) reports.
//! * [`shard`] — horizontal scale: [`ShardedCluster`] partitions a keyspace
//!   across independent replica groups behind a pluggable [`Router`]
//!   (FNV-1a hashing by default), aggregating per-shard convergence and
//!   message metrics (experiments E10/E11). [`ShardedKv`] is its key–value
//!   instantiation.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cluster;
pub mod convergence;
pub mod durable;
pub mod engine;
pub mod net;
pub mod replica;
pub mod session;
pub mod shard;
pub mod state_machine;

pub use cluster::{Cluster, ClusterBuilder, ClusterReport, Consistency, ShardReport};
pub use convergence::{ConvergenceReport, Divergence};
pub use durable::{DurableError, DurableOptions, DurableStore, Recovered};
pub use engine::{
    DeployPlan, Engine, EngineDeployment, EngineKind, NetEngine, SimEngine, ThreadEngine,
};
pub use replica::{Replica, ReplicaCommand, ReplicaOutput};
pub use session::Session;
pub use shard::{
    shard_of, HashRouter, Parallelism, Router, ShardConfig, ShardedCluster, ShardedClusterBuilder,
    ShardedKv, ShardedKvBuilder,
};
pub use state_machine::{Counter, KvStore, Register, StateMachine};

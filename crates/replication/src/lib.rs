//! # `ec-replication` — replicated state machines over (eventual) total order
//! broadcast
//!
//! The paper's motivation is replicated services in the style of Dynamo,
//! PNUTS and Bigtable: a deterministic state machine replicated over server
//! processes. This crate provides that application layer:
//!
//! * [`state_machine`] — deterministic state machines (a key–value store, a
//!   counter, a last-writer-wins register) driven by opaque commands.
//! * [`replica`] — a generic replica that feeds client commands into *any*
//!   [`ec_core::types::EventualTotalOrderBroadcast`] implementation and
//!   replays the delivered sequence into its state machine. Instantiated
//!   with Algorithm 5 it is an *eventually consistent* replicated service
//!   needing only Ω; instantiated with the quorum-gated baseline it is a
//!   *strongly consistent* one needing Ω + Σ.
//! * [`convergence`] — convergence metrics over replica output histories:
//!   when did all correct replicas last agree, how long did divergence
//!   episodes last, how many commands were applied on each side of a
//!   partition. These are the quantities the partition-tolerance experiment
//!   (E2) reports.
//! * [`shard`] — horizontal scale: a sharded eventually consistent KV
//!   service that hash-partitions the keyspace across many independent ETOB
//!   groups, routes client operations to the owning shard, and aggregates
//!   per-shard convergence and message metrics (experiments E10/E11).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod convergence;
pub mod replica;
pub mod shard;
pub mod state_machine;

pub use convergence::{ConvergenceReport, Divergence};
pub use replica::{Replica, ReplicaCommand, ReplicaOutput};
pub use shard::{shard_of, ClusterReport, ShardConfig, ShardReport, ShardedKv, ShardedKvBuilder};
pub use state_machine::{Counter, KvStore, Register, StateMachine};

//! Offline stand-in for `proptest` (see `vendor/README.md`).
//!
//! Implements the subset used by this workspace: the [`proptest!`] macro,
//! the [`strategy::Strategy`] trait over integer ranges / tuples /
//! `prop::collection::vec`, [`arbitrary::any`], and the `prop_assert*`
//! macros. Cases are generated from a deterministic seed; there is **no
//! shrinking** — a failing case is reported with the generated inputs via
//! the panic message instead.

#![warn(missing_docs)]

/// Number of cases each `proptest!` test executes (the real crate's default
/// is 256; kept smaller because several tests run whole simulations).
pub const NUM_CASES: u32 = 48;

/// Strategies: how to generate values of a type.
pub mod strategy {
    use core::ops::Range;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A source of generated values (stub of `proptest::strategy::Strategy`).
    ///
    /// Unlike the real crate there is no value tree / shrinking; a strategy
    /// simply samples a fresh value per case.
    pub trait Strategy {
        /// The type of values this strategy generates.
        type Value: core::fmt::Debug;

        /// Generates one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f` (stub of `Strategy::prop_map`).
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            O: core::fmt::Debug,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    #[derive(Clone, Copy, Debug)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        O: core::fmt::Debug,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn sample(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    /// Strategy for a full-range value, returned by [`crate::arbitrary::any`].
    #[derive(Clone, Copy, Debug)]
    pub struct Any<T>(pub(crate) core::marker::PhantomData<T>);

    macro_rules! impl_any {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    use rand::RngCore;
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_any!(u8, u16, u32, u64, usize);

    impl Strategy for Any<bool> {
        type Value = bool;
        fn sample(&self, rng: &mut StdRng) -> bool {
            use rand::RngCore;
            rng.next_u64() & 1 == 1
        }
    }
}

/// `any::<T>()` support (stub of `proptest::arbitrary`).
pub mod arbitrary {
    use super::strategy::Any;

    /// Returns a strategy generating arbitrary values of `T`.
    pub fn any<T>() -> Any<T>
    where
        Any<T>: super::strategy::Strategy,
    {
        Any(core::marker::PhantomData)
    }
}

/// Collection strategies (stub of `proptest::collection`).
pub mod collection {
    use super::strategy::Strategy;
    use core::ops::Range;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy for `Vec`s with element strategy `S` and a length range.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generates vectors whose length is drawn from `len` and whose elements
    /// are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let n = if self.len.start + 1 >= self.len.end {
                self.len.start
            } else {
                rng.gen_range(self.len.clone())
            };
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Test-runner plumbing used by the [`proptest!`] macro expansion.
pub mod test_runner {
    pub use rand::rngs::StdRng as TestRng;
    use rand::SeedableRng;

    /// Creates the deterministic RNG driving a `proptest!` test.
    ///
    /// Seeded from `PROPTEST_SEED` when set, so a failing case can be
    /// replayed; otherwise a fixed default.
    pub fn new_rng() -> TestRng {
        let seed = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(0xEC_2015);
        TestRng::seed_from_u64(seed)
    }
}

/// The `proptest::prelude` — everything the tests import.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// The `prop` namespace (`prop::collection::vec`, …).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running [`NUM_CASES`] sampled cases.
///
/// The generated inputs of a failing case are included in the panic message
/// (there is no shrinking in this stub).
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __proptest_rng = $crate::test_runner::new_rng();
                for __proptest_case in 0..$crate::NUM_CASES {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __proptest_rng);)+
                    let __proptest_inputs = format!(
                        concat!("case ", "{}", $(concat!("; ", stringify!($arg), " = {:?}"),)+),
                        __proptest_case, $(&$arg),+
                    );
                    let __proptest_result = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| { $body })
                    );
                    if let Err(panic) = __proptest_result {
                        eprintln!("proptest failure [{}]: {}", stringify!($name), __proptest_inputs);
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..10, y in 0usize..4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y < 4);
        }

        #[test]
        fn vec_strategy_respects_length(v in prop::collection::vec((0usize..4, 0u64..100), 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            for (a, b) in &v {
                prop_assert!(*a < 4);
                prop_assert!(*b < 100);
            }
        }

        #[test]
        fn any_compiles(seed in any::<u64>()) {
            let _ = seed;
        }
    }

    #[test]
    fn prop_map_applies() {
        use crate::strategy::Strategy;
        let s = (0u64..5).prop_map(|x| x * 2);
        let mut rng = crate::test_runner::new_rng();
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!(v % 2 == 0 && v < 10);
        }
    }
}

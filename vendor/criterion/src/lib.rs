//! Offline stand-in for `criterion` (see `vendor/README.md`).
//!
//! Implements the harness API this workspace's `[[bench]]` target uses:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup`] configuration
//! (`sample_size` / `warm_up_time` / `measurement_time`),
//! `bench_function` / `bench_with_input`, [`Bencher::iter`],
//! [`BenchmarkId`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Instead of Criterion's statistical engine it
//! times `sample_size` batched samples per benchmark and prints
//! mean/min/max to stdout.

#![warn(missing_docs)]

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

/// Prevents the compiler from optimizing a value away (stable `std` hint).
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Identifier of a parameterized benchmark (`function_name/parameter`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id combining a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Creates an id from a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Times closures handed to it by a benchmark body.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Calls `routine` repeatedly and records the total elapsed time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// The benchmark harness entry point (stub of `criterion::Criterion`).
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the default number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            measurement_time: Duration::from_secs(1),
            _criterion: self,
        }
    }

    /// Runs a single standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        run_benchmark("", &id.into(), sample_size, Duration::from_secs(1), f);
        self
    }
}

/// A group of benchmarks sharing configuration (stub of
/// `criterion::BenchmarkGroup`).
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples collected per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Accepted for API compatibility; the stub has no separate warm-up.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Caps the total measurement time for each benchmark in this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(
            &self.name,
            &id.into(),
            self.sample_size,
            self.measurement_time,
            f,
        );
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(
            &self.name,
            &id.into(),
            self.sample_size,
            self.measurement_time,
            |b| f(b, input),
        );
        self
    }

    /// Finishes the group (reporting happens per benchmark; nothing to do).
    pub fn finish(self) {}
}

fn run_benchmark<F>(
    group: &str,
    id: &BenchmarkId,
    sample_size: usize,
    measurement_time: Duration,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };

    // Calibration sample: one iteration, also warms caches.
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let calibration = bencher.elapsed.max(Duration::from_nanos(1));

    // Pick an iteration count per sample so the whole benchmark stays within
    // the configured measurement time.
    let budget_per_sample = measurement_time
        .checked_div(sample_size as u32)
        .unwrap_or(Duration::ZERO);
    let iters = (budget_per_sample.as_nanos() / calibration.as_nanos()).clamp(1, 1_000) as u64;

    let mut samples = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut bencher = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        samples.push(bencher.elapsed / iters as u32);
    }
    samples.sort_unstable();
    let mean: Duration = samples.iter().sum::<Duration>() / samples.len() as u32;
    println!(
        "bench {label:<50} mean {mean:>12?}  min {:>12?}  max {:>12?}  ({sample_size} samples x {iters} iters)",
        samples[0],
        samples[samples.len() - 1],
    );
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main` function, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Mirror real criterion: `--test`/`--list` style harness flags may
            // be passed by `cargo test`/`cargo bench`; run groups regardless,
            // but honor `--list` by printing nothing bench-shaped.
            let args: Vec<String> = std::env::args().collect();
            if args.iter().any(|a| a == "--list") {
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut ran = 0u32;
        {
            let mut group = c.benchmark_group("g");
            group
                .sample_size(2)
                .warm_up_time(Duration::from_millis(1))
                .measurement_time(Duration::from_millis(5));
            group.bench_function("inc", |b| b.iter(|| ran += 1));
            group.bench_with_input(BenchmarkId::new("param", 3), &3u32, |b, &x| {
                b.iter(|| black_box(x * 2))
            });
            group.finish();
        }
        assert!(ran > 0);
    }
}

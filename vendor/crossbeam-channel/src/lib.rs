//! Offline stand-in for `crossbeam-channel` (see `vendor/README.md`).
//!
//! Re-exports the `std::sync::mpsc` machinery under the crossbeam names used
//! by this workspace: [`unbounded`], [`Sender`], [`Receiver`],
//! [`RecvTimeoutError`] and the related error types. Since Rust 1.72 the std
//! channel *is* the crossbeam implementation upstreamed, so semantics match.

#![warn(missing_docs)]

pub use std::sync::mpsc::{Receiver, RecvError, RecvTimeoutError, SendError, Sender, TryRecvError};

/// Creates an unbounded channel, crossbeam-style.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    std::sync::mpsc::channel()
}

#[cfg(test)]
mod tests {
    use super::{unbounded, RecvTimeoutError};
    use std::time::Duration;

    #[test]
    fn send_recv_roundtrip() {
        let (tx, rx) = unbounded();
        tx.send(5).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(5));
    }

    #[test]
    fn timeout_when_empty() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Timeout)
        );
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn senders_clone_across_threads() {
        let (tx, rx) = unbounded();
        let handles: Vec<_> = (0..4u32)
            .map(|i| {
                let tx = tx.clone();
                std::thread::spawn(move || tx.send(i).unwrap())
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        drop(tx);
        let mut got: Vec<u32> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }
}

//! Offline stand-in for `parking_lot` (see `vendor/README.md`).
//!
//! Provides a non-poisoning [`Mutex`] with the `parking_lot` signature
//! (`lock()` returns the guard directly), backed by `std::sync::Mutex`.

#![warn(missing_docs)]

use std::fmt;
use std::sync::MutexGuard as StdMutexGuard;

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

/// A mutual exclusion primitive with the `parking_lot` API: locking never
/// returns a poison error (a poisoned std mutex is simply recovered).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the underlying data.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(poison)) => Some(poison.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_returns_guard_directly() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn shared_across_threads() {
        let m = std::sync::Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = std::sync::Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1_000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4_000);
    }
}

//! Offline stand-in for the `rand` crate (see `vendor/README.md`).
//!
//! Implements the subset of the rand 0.8 API used by this workspace:
//! [`Rng::gen_range`] over integer ranges, [`SeedableRng::seed_from_u64`],
//! and [`rngs::StdRng`]. The generator is xoshiro256** seeded via SplitMix64
//! — deterministic and statistically fine for simulation, with no
//! cryptographic claims.

#![warn(missing_docs)]

use core::ops::{Range, RangeInclusive};

/// Low-level source of randomness (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing random value generation (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value uniformly from the given range.
    ///
    /// Panics if the range is empty, like the real `rand`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// A range that can be sampled from (subset of `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Samples one value uniformly from `self`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniformly maps 64 random bits into `[0, bound)` without modulo bias worth
/// worrying about at simulation scale (Lemire-style widening multiply).
fn bounded(rng: &mut (impl RngCore + ?Sized), bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64) - (self.start as u64);
                self.start + bounded(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u64) - (start as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + bounded(rng, span + 1) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// Construction of an RNG from a seed (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// RNG implementations, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**
    /// seeded through SplitMix64. (The real `StdRng` is a CSPRNG; the
    /// simulator only needs seed-determinism.)
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256** by Blackman & Vigna (public domain).
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: u64 = rng.gen_range(3u64..=9);
            assert!((3..=9).contains(&x));
            let y: usize = rng.gen_range(0usize..5);
            assert!(y < 5);
        }
    }

    #[test]
    fn gen_range_covers_the_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }
}

//! Quickstart: one service API over two execution engines.
//!
//! The same replicated key–value service — three replicas running the
//! paper's Algorithm 5 (eventual total order broadcast from Ω alone) — is
//! deployed twice through the identical `ClusterBuilder`/`Session` facade:
//! once on the deterministic simulator, once as real OS threads with a
//! heartbeat Ω. Client sessions thread causal dependencies automatically,
//! so each session's writes are applied in submission order on every
//! replica, on every engine, and both deployments converge to byte-identical
//! snapshots — the paper's claim that eventual consistency is not a
//! simulator artifact.
//!
//! Run with: `cargo run --example quickstart`

use ec_replication::{
    Cluster, ClusterBuilder, ClusterReport, Consistency, Engine, KvStore, SimEngine, ThreadEngine,
};

fn run_store<E: Engine>(engine: &E, label: &str) -> ClusterReport {
    let mut cluster: Cluster<KvStore> = ClusterBuilder::new(3)
        .consistency(Consistency::Eventual)
        .deploy(engine);

    // Two client sessions on different front-end replicas. Each session's
    // commands are causally chained (C(m) of the paper), so "final"
    // overwrites "draft" everywhere despite concurrent traffic.
    let mut alice = cluster.session();
    let mut bob = cluster.session();
    cluster.submit(&mut alice, KvStore::put("alice", "draft"), 10);
    cluster.submit(&mut bob, KvStore::put("bob", "hello"), 12);
    cluster.submit(&mut alice, KvStore::put("alice", "final"), 20);
    cluster.submit(&mut bob, KvStore::put("shared", "from-bob"), 25);

    let converged = cluster.run_until_applied(4, 10_000);
    assert!(converged, "{label}: replicas must apply all four commands");

    let alice_view = cluster.read(&alice).expect("typed read");
    println!(
        "{label}: alice reads alice={:?} bob={:?} shared={:?}",
        alice_view.get("alice"),
        alice_view.get("bob"),
        alice_view.get("shared"),
    );
    let report = cluster.finish();
    println!("{report}\n");
    report
}

fn main() {
    println!("deploying the same service on both engines…\n");
    let sim = run_store(&SimEngine::new(), "sim engine   ");
    let threads = run_store(&ThreadEngine::default(), "thread engine");

    let sim_snapshots = &sim.shards[0].snapshots;
    let thread_snapshots = &threads.shards[0].snapshots;
    assert!(sim.shards[0].snapshots_agree());
    assert!(threads.shards[0].snapshots_agree());
    assert_eq!(
        sim_snapshots, thread_snapshots,
        "engines must converge to identical state"
    );
    println!(
        "simulator and thread runtime converged to byte-identical snapshots \
         ({} bytes): substrate independence, as the paper promises",
        sim_snapshots[0].len()
    );
}

//! Quickstart: eventually consistent total order broadcast from Ω alone.
//!
//! Five simulated processes run Algorithm 5 of the paper (`EtobOmega`). The
//! eventual leader detector Ω stabilizes only after a while, so the replicas
//! may disagree early on — but they converge, and the run satisfies the full
//! ETOB specification, which the executable checker verifies at the end.
//!
//! Run with: `cargo run --example quickstart`

use ec_core::etob_omega::{EtobConfig, EtobOmega};
use ec_core::spec::EtobChecker;
use ec_core::workload::BroadcastWorkload;
use ec_detectors::omega::OmegaOracle;
use ec_sim::{FailurePattern, NetworkModel, ProcessId, Time, WorldBuilder};

fn main() {
    let n = 5;
    let failures = FailurePattern::no_failures(n);
    // Ω stabilizes at t = 200; before that every process trusts itself.
    let omega = OmegaOracle::stabilizing_at(failures.clone(), Time::new(200));

    let mut world = WorldBuilder::new(n)
        .network(NetworkModel::uniform_delay(1, 4))
        .failures(failures.clone())
        .seed(2026)
        .build_with(|p| EtobOmega::new(p, EtobConfig::default()), omega);

    // 12 messages broadcast round-robin by all processes.
    let workload = BroadcastWorkload::uniform(n, 12, 10, 15);
    workload.submit_to(&mut world);
    world.run_until(3_000);

    println!("== delivered sequences ==");
    for p in world.process_ids() {
        let delivered = world.algorithm(p).delivered();
        let ids: Vec<String> = delivered.iter().map(|m| m.id.to_string()).collect();
        println!("{p}: [{}]", ids.join(", "));
    }

    let history = world.trace().output_history();
    let checker =
        EtobChecker::from_delivered(&history, workload.records(), failures.correct(), Time::ZERO);
    match checker.find_stabilization_time() {
        Some(tau) => println!("\nordering properties hold from t = {tau} onwards"),
        None => println!("\nordering properties never stabilized (unexpected!)"),
    }
    let verdict = checker
        .with_tau(checker.find_stabilization_time().unwrap_or(Time::ZERO))
        .check_all_with_causal();
    println!(
        "ETOB specification (incl. causal order): {:?}",
        verdict.map(|_| "OK")
    );
    println!(
        "messages sent: {}, delivered: {}",
        world.metrics().messages_sent,
        world.metrics().messages_delivered
    );
    let leader = ProcessId::new(0);
    println!("eventual leader: {leader} (smallest-index correct process)");
}

//! The CHT extraction at work (Lemma 1 / Appendix B): emulating Ω from an
//! eventual-consensus algorithm.
//!
//! A real (simulated) run of Algorithm 4 records the failure-detector samples
//! it consumed. The reduction then builds the sample DAG, simulates runs of
//! the algorithm organized in a tagged simulation tree, locates a decision
//! gadget below the first bivalent vertex, and outputs its deciding process —
//! which stabilizes on the same correct process at every correct process, even
//! though the original leader crashes halfway through the run.
//!
//! Run with: `cargo run --example leader_extraction`

use ec_cht::{FdDag, OmegaEmulation, OmegaExtractor, TreeConfig};
use ec_core::ec_omega::{EcConfig, EcOmega};
use ec_core::harness::MultiInstanceProposer;
use ec_detectors::omega::{OmegaOracle, PreStabilization};
use ec_sim::{FailurePattern, NetworkModel, ProcessId, RecordingFd, Time, WorldBuilder};

fn main() {
    let n = 2;
    // p0 crashes at t = 120; Ω keeps naming p0 until it stabilizes on p1.
    let failures = FailurePattern::no_failures(n).with_crash(ProcessId::new(0), Time::new(120));
    let omega = OmegaOracle::stabilizing_at(failures.clone(), Time::new(150))
        .with_pre_stabilization(PreStabilization::Fixed(ProcessId::new(0)));

    // Run Algorithm 4 for a few instances and record the Ω samples it used.
    let mut world = WorldBuilder::new(n)
        .network(NetworkModel::fixed_delay(2))
        .failures(failures.clone())
        .seed(99)
        .build_with(
            |p| {
                MultiInstanceProposer::new(
                    EcOmega::<bool>::new(EcConfig::default()),
                    vec![p.index() % 2 == 0; 4],
                )
            },
            RecordingFd::new(omega, n),
        );
    world.run_until(600);
    let history = world.fd().history().clone();
    println!(
        "recorded {} failure-detector samples from the run",
        history.len()
    );

    let dag = FdDag::from_history(&history, n);
    println!(
        "sample DAG: {} vertices, {} edges",
        dag.len(),
        dag.edge_count()
    );

    let extractor = OmegaExtractor::new(
        n,
        Box::new(|_p| EcOmega::<bool>::new(EcConfig { poll_period: 1 })),
    )
    .with_window(6)
    .with_tree_config(TreeConfig {
        max_depth: 6,
        closure_steps: 40,
        max_instance: 1,
        max_vertices: 2_000,
    });

    let emulation = OmegaEmulation::run(&extractor, &history, &failures, 6);
    println!("\nextraction stages (per correct process):");
    for (stage, outcomes) in emulation.stages.iter().enumerate() {
        let cells: Vec<String> = outcomes
            .iter()
            .enumerate()
            .map(|(p, o)| match o {
                Some(leader) => format!("p{p}→{leader}"),
                None => format!("p{p}→(keep)"),
            })
            .collect();
        println!("  stage {}: {}", stage + 1, cells.join("  "));
    }

    match emulation.verify(&failures) {
        Ok((stabilized_at, leader)) => println!(
            "\nemulated Ω stabilized on {leader} (a correct process) by stage {stabilized_at} — Lemma 1 in action"
        ),
        Err(violation) => println!("\nunexpected Ω violation: {violation}"),
    }
}

//! The service facade over real OS threads: the same `Cluster`/`Session`
//! API that drives the simulator deploys a replicated key–value store as
//! one thread per replica with a heartbeat-based Ω. The demo writes through
//! a session, crashes the leader midway, and shows that the surviving
//! replicas re-elect a leader, keep serving, and converge to identical
//! state — eventual consistency surviving a real crash on real threads.
//!
//! Run with: `cargo run --example runtime_demo`

use ec_replication::{Cluster, ClusterBuilder, KvStore, ThreadEngine};
use ec_sim::ProcessId;

fn main() {
    let n = 4;
    let mut cluster: Cluster<KvStore> = ClusterBuilder::new(n).deploy(&ThreadEngine::default());
    println!("spawned {n} replicas (threads); writing 4 keys through one session…");

    // the session enters through p1, which survives the crash below
    let mut session = cluster.session_at(ProcessId::new(1));
    for k in 0..4u64 {
        cluster.submit(
            &mut session,
            KvStore::put(&format!("key{k}"), &format!("value{k}")),
            10 + 10 * k,
        );
    }
    cluster.run_until(300);

    println!("crashing the current leader p0…");
    cluster.crash(ProcessId::new(0));
    cluster.run_until(700);

    cluster.submit(&mut session, KvStore::put("after-crash", "served"), 710);
    let survivors_converged = cluster.run_until_applied(5, 5_000);
    println!("survivors applied all 5 commands after re-election: {survivors_converged}");

    println!("\nfinal state of the survivors:");
    for p in (1..n).map(ProcessId::new) {
        let state = cluster.state(p).expect("snapshot decodes");
        println!(
            "  {p}: applied = {}, after-crash = {:?}",
            cluster.applied(p),
            state.get("after-crash")
        );
    }

    let report = cluster.finish();
    println!("\n{report}");
    assert!(
        report.shards[0].applied[1..].iter().all(|&a| a == 5),
        "survivors must apply every command, including the post-crash write"
    );
}

//! Algorithm 5 over real OS threads: the `ec-runtime` crate runs the same
//! automaton used in the simulator as one thread per process, connected by
//! channels, with a heartbeat-based Ω. The demo broadcasts a few messages,
//! crashes the leader midway, and shows that the survivors re-elect a leader
//! and keep delivering in the same order.
//!
//! Run with: `cargo run --example runtime_demo`

use std::time::Duration;

use ec_core::etob_omega::{EtobConfig, EtobOmega};
use ec_core::types::EtobBroadcast;
use ec_runtime::{Runtime, RuntimeConfig};
use ec_sim::ProcessId;

fn main() {
    let n = 4;
    let runtime = Runtime::spawn(n, RuntimeConfig::default(), |p| {
        EtobOmega::new(p, EtobConfig::default())
    });

    println!("spawned {n} processes (threads); broadcasting 4 messages…");
    for k in 0..4u64 {
        let origin = ProcessId::new((k % n as u64) as usize);
        runtime.submit(
            origin,
            EtobBroadcast::new(origin, k + 1, format!("msg-{k}").into_bytes()),
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    runtime.run_for(Duration::from_millis(300));

    println!("crashing the current leader p0…");
    runtime.crash(ProcessId::new(0));
    runtime.run_for(Duration::from_millis(400));

    let origin = ProcessId::new(2);
    runtime.submit(
        origin,
        EtobBroadcast::new(origin, 99, b"after-crash".to_vec()),
    );
    runtime.run_for(Duration::from_millis(400));

    let report = runtime.shutdown();
    println!("\nfinal delivered sequences (survivors):");
    for p in (1..n).map(ProcessId::new) {
        let sequence = report
            .last_output_of(p)
            .map(|seq| {
                seq.iter()
                    .map(|m| String::from_utf8_lossy(&m.payload).into_owned())
                    .collect::<Vec<_>>()
                    .join(", ")
            })
            .unwrap_or_else(|| "(nothing)".to_string());
        println!(
            "  {p}: [{sequence}]  leader = {:?}",
            report.last_leader_of(p)
        );
    }
}

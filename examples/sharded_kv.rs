//! Scaling out: a sharded, eventually consistent key–value service.
//!
//! The keyspace is hash-partitioned across independent replica groups
//! (shards) by the default FNV-1a `HashRouter`, each shard a replicated
//! `KvStore` over Algorithm 5 with message batching. A zipf-skewed client
//! mix is routed to the owning shards; one shard then lives through an
//! internal partition — and because shards are independent, every other
//! shard's service is completely unaffected while the affected shard (being
//! eventually consistent!) keeps serving on its majority side.
//!
//! Run with: `cargo run --example sharded_kv`

use ec_core::etob_omega::EtobConfig;
use ec_core::workload::{KvWorkload, ZipfMix};
use ec_replication::shard::{ShardConfig, ShardedKv};
use ec_sim::{NetworkModel, PartitionSpec, ProcessSet, Time};

const SHARDS: usize = 4;
const REPLICAS: usize = 3;
const PARTITIONED_SHARD: usize = 2;
const HORIZON: u64 = 4_000;

fn main() {
    let workload = KvWorkload::zipf(ZipfMix {
        keys: 48,
        ops: 120,
        skew: 1.1,
        clients: REPLICAS - 1, // submit via replicas 0/1: the connected side
        start: 20,
        spacing: 2,
        seed: 11,
        del_every: 0,
    });

    // Isolate replica 2 of one shard for most of the run.
    let isolated: ProcessSet = [2].into_iter().collect();
    let partition_net = NetworkModel::fixed_delay(2).with_partition(
        Time::new(50),
        Time::new(2_500),
        PartitionSpec::isolate(isolated, REPLICAS),
    );

    let mut cluster = ShardedKv::builder(ShardConfig {
        shards: SHARDS,
        replicas_per_shard: REPLICAS,
        etob: EtobConfig::batched(8),
        ..Default::default()
    })
    .shard_network(PARTITIONED_SHARD, partition_net)
    .build();

    cluster.submit_workload(&workload);
    cluster.run_until(HORIZON);

    println!(
        "sharded KV: {SHARDS} shards x {REPLICAS} replicas, {} zipf ops over {} keys, \
         batch flush = 8 ticks",
        workload.len(),
        workload.keyspace()
    );
    println!("shard {PARTITIONED_SHARD} partitioned (replica 2 isolated) during [50, 2500)\n");

    let report = cluster.report();
    println!("{report}");
    println!(
        "\nbatching amortization: {} ops / {} update broadcasts = {:.2} ops per broadcast",
        report.total_ops_routed(),
        report.total_updates_sent(),
        report.total_ops_routed() as f64 / report.total_updates_sent() as f64
    );

    // Reads route through the same hash partitioner the writes used.
    let hot = &workload.ops()[0].key;
    println!(
        "\nread {:?} -> {:?} (owned by shard {})",
        hot,
        cluster.get(hot),
        cluster.shard_of_key(hot)
    );

    assert!(
        report.all_converged(),
        "all shards must converge after the heal"
    );
}

//! Partition tolerance: an eventually consistent replicated key–value store
//! (Ω only, Algorithm 5) versus a strongly consistent one (Ω + Σ, quorum
//! sequencer), both living through a 2-vs-3 network partition that contains
//! the leader on the minority side.
//!
//! The eventually consistent store keeps serving writes on the leader's side
//! during the partition and converges after the heal; the strongly consistent
//! store blocks until the partition heals — Σ is exactly the availability
//! price of strong consistency (Sections 1 and 7 of the paper).
//!
//! Run with: `cargo run --example partitioned_kv`

use ec_core::etob_omega::{EtobConfig, EtobOmega};
use ec_core::tob_consensus::{ConsensusTob, ConsensusTobConfig};
use ec_detectors::{omega::OmegaOracle, sigma::SigmaOracle, PairFd};
use ec_replication::{ConvergenceReport, KvStore, Replica, ReplicaCommand};
use ec_sim::{
    FailurePattern, NetworkModel, PartitionSpec, ProcessId, ProcessSet, Time, WorldBuilder,
};

const N: usize = 5;
const PARTITION: (u64, u64) = (50, 900);
const HORIZON: u64 = 2_500;

fn network() -> NetworkModel {
    let minority: ProcessSet = [0, 1].into_iter().collect();
    NetworkModel::fixed_delay(2).with_partition(
        Time::new(PARTITION.0),
        Time::new(PARTITION.1),
        PartitionSpec::isolate(minority, N),
    )
}

fn writes() -> Vec<(ProcessId, ReplicaCommand, u64)> {
    (0..6u64)
        .map(|k| {
            (
                ProcessId::new((k % 2) as usize), // submitted on the leader's side
                ReplicaCommand::new(KvStore::put(&format!("key{k}"), &format!("value{k}"))),
                100 + 25 * k,
            )
        })
        .collect()
}

fn main() {
    let failures = FailurePattern::no_failures(N);

    // --- eventually consistent store (needs only Ω) --------------------
    let omega = OmegaOracle::stable_from_start(failures.clone());
    let mut eventual = WorldBuilder::new(N)
        .network(network())
        .failures(failures.clone())
        .seed(1)
        .build_with(
            |p| Replica::<KvStore, _>::new(EtobOmega::new(p, EtobConfig::default())),
            omega,
        );
    for (p, cmd, at) in writes() {
        eventual.schedule_input(p, cmd, at);
    }
    eventual.run_until(HORIZON);

    // --- strongly consistent store (needs Ω + Σ) -----------------------
    let fd = PairFd::new(
        OmegaOracle::stable_from_start(failures.clone()),
        SigmaOracle::majority(failures.clone()),
    );
    let mut strong = WorldBuilder::new(N)
        .network(network())
        .failures(failures.clone())
        .seed(1)
        .build_with(
            |p| Replica::<KvStore, _>::new(ConsensusTob::new(p, ConsensusTobConfig::default())),
            fd,
        );
    for (p, cmd, at) in writes() {
        strong.schedule_input(p, cmd, at);
    }
    strong.run_until(HORIZON);

    // --- report ---------------------------------------------------------
    let probe = Time::new(PARTITION.1 - 50);
    println!(
        "partition [{}, {}), probing applied commands at t = {probe}",
        PARTITION.0, PARTITION.1
    );
    println!(
        "{:<28} {:>18} {:>18}",
        "replica", "eventual (Ω)", "strong (Ω+Σ)"
    );
    let eh = eventual.trace().output_history();
    let sh = strong.trace().output_history();
    for p in (0..N).map(ProcessId::new) {
        let e = eh.value_at(p, probe).map(|o| o.applied).unwrap_or(0);
        let s = sh.value_at(p, probe).map(|o| o.applied).unwrap_or(0);
        println!(
            "{:<28} {:>18} {:>18}",
            format!("{p} (during partition)"),
            e,
            s
        );
    }
    for p in (0..N).map(ProcessId::new) {
        let e = eventual.algorithm(p).applied();
        let s = strong.algorithm(p).applied();
        println!("{:<28} {:>18} {:>18}", format!("{p} (after heal)"), e, s);
    }
    let er = ConvergenceReport::from_history(&eh, &failures.correct());
    let sr = ConvergenceReport::from_history(&sh, &failures.correct());
    println!(
        "\neventual store converged: {} (divergence episodes: {})",
        er.is_converged(),
        er.divergence_count()
    );
    println!(
        "strong   store converged: {} (divergence episodes: {})",
        sr.is_converged(),
        sr.divergence_count()
    );
    println!(
        "\nreading key3 on p3: eventual = {:?}, strong = {:?}",
        eventual.algorithm(ProcessId::new(3)).state().get("key3"),
        strong.algorithm(ProcessId::new(3)).state().get("key3")
    );
}

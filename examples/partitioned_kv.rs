//! Partition tolerance: an eventually consistent replicated key–value store
//! (Ω only, Algorithm 5) versus a strongly consistent one (Ω + Σ, quorum
//! sequencer), both living through a 2-vs-3 network partition that contains
//! the leader on the minority side.
//!
//! The two stores are the *same code* — a `Cluster<KvStore>` deployed
//! through the facade — differing only in the builder's `consistency` knob.
//! The eventually consistent store keeps serving writes on the leader's side
//! during the partition and converges after the heal; the strongly
//! consistent store blocks until the partition heals — Σ is exactly the
//! availability price of strong consistency (Sections 1 and 7 of the paper).
//!
//! Run with: `cargo run --example partitioned_kv`

use ec_replication::{Cluster, ClusterBuilder, Consistency, KvStore, SimEngine};
use ec_sim::{NetworkModel, PartitionSpec, ProcessId, ProcessSet, Time};

const N: usize = 5;
const PARTITION: (u64, u64) = (50, 900);
const HORIZON: u64 = 2_500;

fn engine() -> SimEngine {
    let minority: ProcessSet = [0, 1].into_iter().collect();
    let network = NetworkModel::fixed_delay(2).with_partition(
        Time::new(PARTITION.0),
        Time::new(PARTITION.1),
        PartitionSpec::isolate(minority, N),
    );
    SimEngine::new().network(network).seed(1)
}

fn deploy(consistency: Consistency) -> Cluster<KvStore> {
    let mut cluster = ClusterBuilder::<KvStore>::new(N)
        .consistency(consistency)
        .deploy(&engine());
    // both clients sit on the leader's (minority) side of the partition
    let mut sessions = [
        cluster.session_at(ProcessId::new(0)),
        cluster.session_at(ProcessId::new(1)),
    ];
    for k in 0..6u64 {
        let session = &mut sessions[(k % 2) as usize];
        cluster.submit(
            session,
            KvStore::put(&format!("key{k}"), &format!("value{k}")),
            100 + 25 * k,
        );
    }
    cluster.run_until(HORIZON);
    cluster
}

fn main() {
    let eventual = deploy(Consistency::Eventual);
    let strong = deploy(Consistency::Strong);

    let probe = PARTITION.1 - 50;
    println!(
        "partition [{}, {}), probing applied commands at t = {probe}",
        PARTITION.0, PARTITION.1
    );
    println!(
        "{:<28} {:>18} {:>18}",
        "replica", "eventual (Ω)", "strong (Ω+Σ)"
    );
    let eventual_during = eventual.applied_at_all(probe);
    let strong_during = strong.applied_at_all(probe);
    for p in (0..N).map(ProcessId::new) {
        println!(
            "{:<28} {:>18} {:>18}",
            format!("{p} (during partition)"),
            eventual_during[p.index()],
            strong_during[p.index()],
        );
    }
    for p in (0..N).map(ProcessId::new) {
        println!(
            "{:<28} {:>18} {:>18}",
            format!("{p} (after heal)"),
            eventual.applied(p),
            strong.applied(p)
        );
    }

    println!(
        "\nreading key3 on p3: eventual = {:?}, strong = {:?}",
        eventual
            .state(ProcessId::new(3))
            .and_then(|s| s.get("key3").map(str::to_owned)),
        strong
            .state(ProcessId::new(3))
            .and_then(|s| s.get("key3").map(str::to_owned)),
    );

    println!("\n{}", eventual.report());
    println!("{}", strong.report());
}

//! Chaos testing in one file: a seeded nemesis run, its verdict, and a
//! caught-and-shrunk bug.
//!
//! The explorer generates adversarial scenarios — partitions, lossy and
//! duplicating links, crash–recovery, Ω lies — and the history checker
//! validates what each consistency level promises once faults cease:
//! convergence and session order for `Consistency::Eventual`, plus a
//! WGL-style linearizability search for `Consistency::Strong`. A key–value
//! store with an injected non-commutativity bug ("largest value wins"
//! instead of last-delivered-wins) converges fine, but cannot be
//! linearized — the checker flags it and the shrinker reduces the failing
//! schedule to a minimal replayable counterexample.
//!
//! Everything is seeded and deterministic: run it twice, get identical
//! output (the CI chaos job does exactly that and diffs).
//!
//! Run with: `cargo run --example chaos_demo`

use ec_chaos::shrink::shrink;
use ec_chaos::{
    check_outcome, run_scenario, ClientOp, MergingKv, Scenario, ScenarioGen, WorkloadOp,
};
use ec_replication::{Consistency, KvStore};

fn main() {
    // -- 1. the seeded explorer: adversarial scenarios, honest store --------
    let mut explorer = ScenarioGen::new(7);
    for consistency in [Consistency::Eventual, Consistency::Strong] {
        let scenario = explorer.generate(consistency);
        print!("{scenario}");
        let outcome = run_scenario::<KvStore>(&scenario);
        let verdict = check_outcome(&outcome);
        let totals = &outcome.report.totals;
        println!(
            "  injected: {} lost, {} duplicated, {} crash(es), {} recovery(ies)",
            totals.faults_dropped, totals.faults_duplicated, totals.crashes, totals.recoveries
        );
        println!("  verdict: {verdict}\n");
        assert!(verdict.ok(), "{verdict}");
    }

    // -- 2. the same machinery catches an injected bug ----------------------
    let mut buggy = Scenario::quiet("injected-bug", 3, Consistency::Strong);
    let put = |at, key: &str, value: &str| ClientOp {
        at,
        session: 0,
        op: WorkloadOp::Put {
            key: key.into(),
            value: value.into(),
        },
    };
    buggy.workload = vec![
        put(10, "k", "long-initial-value"),
        put(600, "k", "v2"), // acknowledged strictly after the first write
        ClientOp {
            at: 2_800,
            session: 1,
            op: WorkloadOp::Read { key: "k".into() },
        },
    ];
    let verdict = check_outcome(&run_scenario::<MergingKv>(&buggy));
    println!("MergingKv (writes treated as commutative): {verdict}");
    assert!(!verdict.ok(), "the bug must be caught");

    let shrunk = shrink(&buggy, |s| {
        !check_outcome(&run_scenario::<MergingKv>(s)).ok()
    });
    println!("minimal replayable counterexample:\n{shrunk}");
}

//! The throughput engine: worker-pool shard stepping + live telemetry.
//!
//! Demonstrates the two knobs E14 added to the sharded service:
//!
//! * `Parallelism` on the builder — `Workers(n)` steps the independent
//!   shard worlds on `n` scoped worker threads. Shards share nothing, so
//!   this is pure scheduling: the run below executes the same seeded
//!   workload in both modes and asserts the reports are byte-identical.
//! * `submit_batch` — routes a whole slice of operations per shard in one
//!   pass instead of re-entering the router per op.
//!
//! Between steps the per-shard telemetry recorders are scraped live (the
//! same histograms the E14 artifact pins), showing submit→deliver latency
//! percentiles while traffic is still in flight.
//!
//! Run with: `cargo run --example throughput_demo`

use ec_core::etob_omega::EtobConfig;
use ec_core::workload::{KvWorkload, ZipfMix};
use ec_replication::shard::{Parallelism, ShardConfig, ShardedKv};

const SHARDS: usize = 4;
const REPLICAS: usize = 3;

fn workload() -> KvWorkload {
    KvWorkload::zipf(ZipfMix {
        keys: 64,
        ops: 384,
        skew: 1.0,
        clients: REPLICAS,
        start: 10,
        spacing: 1,
        seed: 17,
        del_every: 0,
    })
}

fn run(parallelism: Parallelism) -> (String, u128) {
    let workload = workload();
    let mut cluster = ShardedKv::builder(ShardConfig {
        shards: SHARDS,
        replicas_per_shard: REPLICAS,
        etob: EtobConfig::batched(5),
        ..Default::default()
    })
    .parallelism(parallelism)
    .build();

    // Batch-aware submission: one routing pass over the whole op slice.
    cluster.submit_batch(workload.ops());

    let started = std::time::Instant::now();
    let horizon = workload.last_submission_time() + 500;

    // Step in stages and scrape telemetry live between them: the merged
    // histograms are visible while traffic is still being delivered.
    for checkpoint in [horizon / 3, 2 * horizon / 3, horizon] {
        cluster.run_until(checkpoint);
        let telemetry = cluster.report().telemetry();
        let lat = &telemetry.submit_deliver;
        println!(
            "  [{parallelism:?}] t={checkpoint:>3}: {} events, submit->deliver p50={} p99={} (ticks)",
            telemetry.events_recorded,
            lat.quantile(500),
            lat.quantile(990),
        );
    }
    let wall = started.elapsed().as_micros();

    let report = cluster.finish();
    assert!(report.all_converged(), "all shards converge at the horizon");
    (report.to_json(), wall)
}

fn main() {
    let ops = workload().len();
    println!(
        "throughput engine demo: {ops} zipf ops over {SHARDS} shards x {REPLICAS} replicas, \
         batch flush = 5\n"
    );

    println!("sequential stepping:");
    let (seq_json, seq_wall) = run(Parallelism::Sequential);
    println!("\nworker-pool stepping (4 workers):");
    let (par_json, par_wall) = run(Parallelism::Workers(4));

    // The determinism contract: execution mode is pure scheduling. The whole
    // aggregated export — counters, convergence, merged telemetry — matches
    // byte for byte.
    assert_eq!(seq_json, par_json, "execution mode must not change results");

    let ops = ops as u128;
    println!(
        "\nidentical reports across modes; sequential {} op/s, workers {} op/s (single host)",
        ops * 1_000_000 / seq_wall.max(1),
        ops * 1_000_000 / par_wall.max(1),
    );
    println!("(see BENCH_throughput.json / EXPERIMENTS.md E14 for the pinned grid)");
}

//! Live observability on the socket engine: a replicated KV cluster runs as
//! real TCP nodes, a workload streams through one session, and a *scrape* —
//! a separate connection speaking the same wire codec — reads each node's
//! latency metrics while the node is serving, Prometheus-exposition style.
//! At shutdown, the harvested per-replica reports merge into one cluster
//! latency summary with submit→deliver / promote→deliver / stability-lag
//! percentiles. The same workload then replays on the simulator to show the
//! flight recorder: the causally merged recent-event trace every failed
//! chaos run dumps next to its counterexample.
//!
//! Run with: `cargo run --example telemetry_demo`

use ec_replication::{Cluster, ClusterBuilder, Engine, KvStore, NetEngine, SimEngine};
use ec_sim::ProcessId;
use ec_telemetry::{merge_flight, render_flight};

fn drive<E: Engine>(engine: &E) -> Cluster<KvStore> {
    let mut cluster: Cluster<KvStore> = ClusterBuilder::new(3).deploy(engine);
    let mut session = cluster.session();
    for k in 0..8u64 {
        cluster.submit(
            &mut session,
            KvStore::put(&format!("key{k}"), &format!("value{k}")),
            10 + 10 * k,
        );
    }
    assert!(
        cluster.run_until_applied(8, 10_000),
        "every replica applies all 8 commands"
    );
    cluster
}

fn main() {
    println!("spawning 3 TCP nodes; writing 8 keys through one session…");
    let cluster = drive(&NetEngine::default());

    // scrape a live node: a fresh connection, a StatsRequest frame, and the
    // node answers with its current metrics — no restart, no shutdown
    println!("\nlive scrape of node p0 (over its own wire protocol):");
    let exposition = cluster
        .scrape(ProcessId::new(0))
        .expect("a live node answers scrapes");
    for line in exposition.lines() {
        println!("  {line}");
    }

    let report = cluster.finish();
    println!("\ncluster latency summary (all replicas merged):");
    println!("  {}", report.telemetry());
    println!("\nstable JSON export:\n  {}", report.to_json());

    let shard = &report.shards[0];
    assert!(shard.snapshots_agree(), "nodes must converge");
    assert!(
        report.telemetry().submit_deliver.count() > 0,
        "the run must have measured submit→deliver latencies"
    );
    assert!(
        exposition.contains("ec_submit_deliver{replica=\"0\",quantile=\"0.5\"}"),
        "the scrape must expose the p50"
    );
    println!("\nsubmit→deliver p50 and p99 measured on the wire: ok");

    // the same workload on the simulator, to show the flight recorder: the
    // per-replica event rings merge into one causal timeline
    let sim = drive(&SimEngine::new());
    println!("\nsim replay latency (logical ticks): {}", sim.telemetry());
    let trace = render_flight(&merge_flight(&sim.flight_events()));
    let lines: Vec<&str> = trace.lines().collect();
    println!("flight recorder, last 10 of {} events:", lines.len());
    for line in lines.iter().rev().take(10).rev() {
        println!("  {line}");
    }
}

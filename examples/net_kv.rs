//! The service facade over real sockets: the same `Cluster`/`Session` API
//! that drives the simulator and the thread engine deploys a replicated
//! key–value store as one node per replica, each owning a loopback TCP
//! listener and speaking the length-prefixed binary wire codec. The demo
//! writes through a session on one node, waits for replication, and shows
//! both replicas converging to byte-identical state — with the byte counts
//! in the report measured from the actual frames on the wire.
//!
//! Run with: `cargo run --example net_kv`

use ec_replication::{Cluster, ClusterBuilder, KvStore, NetEngine};
use ec_sim::ProcessId;

fn main() {
    let n = 2;
    let mut cluster: Cluster<KvStore> = ClusterBuilder::new(n).deploy(&NetEngine::default());
    println!("spawned {n} replicas (TCP nodes on loopback); writing 3 keys through one session…");

    // the session enters through p1; every write must cross the wire to p0
    let mut session = cluster.session_at(ProcessId::new(1));
    for k in 0..3u64 {
        cluster.submit(
            &mut session,
            KvStore::put(&format!("key{k}"), &format!("value{k}")),
            10 + 10 * k,
        );
    }
    let all_applied = cluster.run_until_applied(3, 10_000);
    println!("both nodes applied all 3 commands: {all_applied}");

    println!("\nfinal state of each node:");
    for p in (0..n).map(ProcessId::new) {
        let state = cluster.state(p).expect("snapshot decodes");
        println!(
            "  {p}: applied = {}, key2 = {:?}",
            cluster.applied(p),
            state.get("key2")
        );
    }
    println!(
        "malformed frames seen on the wire: {}",
        cluster.malformed_frames()
    );

    let report = cluster.finish();
    let shard = &report.shards[0];
    assert!(
        shard.snapshots_agree(),
        "both nodes must converge to identical snapshots"
    );
    assert!(
        shard.applied.iter().all(|&a| a == 3),
        "both nodes must apply every command"
    );
    println!(
        "\nsnapshots byte-identical across the wire: {}",
        shard.snapshots_agree()
    );
}
